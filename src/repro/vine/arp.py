"""ARP-level mechanics of migration detection (paper §III-B).

    "Our approach is based on standard networking techniques such as
    ARP proxy and gratuitous ARP messages."

Two mechanisms, both modeled explicitly:

* **Gratuitous ARP** — when a migrated guest resumes, it broadcasts an
  ARP announcement on its new LAN (standard guest behavior after
  migration).  The local ViNe router hears it after the LAN's latency
  plus a processing delay: that is the *detection* event that starts
  reconfiguration.
* **ARP proxy** — at the *source* site, the ViNe router answers ARP
  queries for the departed VM with its own MAC, so same-LAN peers keep
  a next hop and hand their packets to the router instead of failing
  hard on ARP timeout.  The proxy entry is withdrawn once the router
  learns the VM's new location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..network.topology import Topology
from ..simkernel import Process, Simulator


@dataclass(frozen=True)
class GratuitousArp:
    """One gratuitous ARP announcement as observed by a router."""

    vm_name: str
    overlay_host: int
    site: str
    emitted_at: float
    observed_at: float

    @property
    def detection_latency(self) -> float:
        return self.observed_at - self.emitted_at


def emit_gratuitous_arp(sim: Simulator, topology: Topology, vm_name: str,
                        overlay_host: int, site: str,
                        router_pickup: float = 0.05) -> Process:
    """Broadcast a gratuitous ARP at ``site``; yields the
    :class:`GratuitousArp` once the local ViNe router has observed it
    (LAN propagation + router pickup)."""

    def _emit():
        emitted = sim.now
        lan = topology.lan(site)
        yield sim.timeout(lan.latency + router_pickup)
        return GratuitousArp(
            vm_name=vm_name,
            overlay_host=overlay_host,
            site=site,
            emitted_at=emitted,
            observed_at=sim.now,
        )

    return sim.process(_emit(), name=f"garp-{vm_name}")


class ArpProxyTable:
    """Per-router proxy-ARP entries for departed VMs."""

    def __init__(self, site: str):
        self.site = site
        self._entries: Dict[int, float] = {}
        self.engaged_total = 0

    def engage(self, overlay_host: int, at: float) -> None:
        """Start answering ARP for a departed VM."""
        if overlay_host not in self._entries:
            self._entries[overlay_host] = at
            self.engaged_total += 1

    def release(self, overlay_host: int) -> Optional[float]:
        """Withdraw the proxy entry; returns how long it was engaged."""
        since = self._entries.pop(overlay_host, None)
        return since

    def is_proxying(self, overlay_host: int) -> bool:
        return overlay_host in self._entries

    def __len__(self) -> int:
        return len(self._entries)
