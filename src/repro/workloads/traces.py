"""Spot-price traces.

The paper (§III-C, §IV) motivates autonomic relocation and migratable
spot instances with price variability "Amazon already introduced ...
with spot instances".  Real EC2 traces are not redistributable, so we
generate the standard synthetic equivalent: a mean-reverting (AR(1) /
Ornstein-Uhlenbeck) process around a base price with occasional demand
spikes — the regime documented in the spot-market measurement
literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..simkernel import Simulator, TimerBank


def spot_price_trace(rng: np.random.Generator, duration: float,
                     tick: float = 60.0, base: float = 0.03,
                     volatility: float = 0.15, reversion: float = 0.05,
                     spike_prob: float = 0.01, spike_magnitude: float = 4.0,
                     floor_factor: float = 0.2
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(times, prices)`` for a spot market.

    Mean-reverting log-price plus Bernoulli spikes that multiply the
    price by ``spike_magnitude`` for one tick (the reclamation events
    the migratable-spot mechanism exists for).
    """
    if duration <= 0 or tick <= 0:
        raise ValueError("duration and tick must be positive")
    n = int(np.ceil(duration / tick)) + 1
    times = np.arange(n) * tick
    log_dev = np.empty(n)
    log_dev[0] = 0.0
    noise = rng.normal(0.0, volatility * np.sqrt(tick / 3600.0), n)
    for i in range(1, n):
        log_dev[i] = (1 - reversion) * log_dev[i - 1] + noise[i]
    prices = base * np.exp(log_dev)
    spikes = rng.random(n) < spike_prob
    prices[spikes] *= spike_magnitude
    np.maximum(prices, base * floor_factor, out=prices)
    return times, prices


@dataclass
class PricePoint:
    time: float
    price: float


class SpotPriceProcess:
    """Replays a price trace inside the simulation.

    Exposes ``current_price`` and notifies subscribers on every change —
    the spot market's reclamation monitor hangs off this.

    ``vectorized=True`` replays the whole trace through a
    :class:`~repro.simkernel.TimerBank` group instead of a generator
    process: every tick of every market shares one kernel sentinel per
    distinct instant, so a many-market run stops paying one process
    resume + timeout per tick.  Price/history/subscriber semantics are
    identical; the fast path is opt-in because it changes the raw
    event-count timeline.  An existing ``bank`` may be shared across
    markets.
    """

    def __init__(self, sim: Simulator, times: np.ndarray,
                 prices: np.ndarray, vectorized: bool = False,
                 bank: TimerBank = None):
        if len(times) != len(prices) or len(times) == 0:
            raise ValueError("times and prices must be equal-length, non-empty")
        self.sim = sim
        self.times = np.asarray(times, dtype=float)
        self.prices = np.asarray(prices, dtype=float)
        self.current_price = float(prices[0])
        self.history: List[PricePoint] = [PricePoint(float(times[0]),
                                                     self.current_price)]
        self._subscribers: List[Callable[[float], None]] = []
        if vectorized or bank is not None:
            self.process = None
            self.bank = bank if bank is not None else TimerBank(sim)
            if len(self.times) > 1:
                delays = np.maximum(self.times[1:] - sim.now, 0.0)
                self.bank.arm_array(delays, self._on_ticks)
        else:
            self.bank = None
            self.process = sim.process(self._run(), name="spot-prices")

    def subscribe(self, callback: Callable[[float], None]) -> None:
        """``callback(new_price)`` fires on every price change."""
        self._subscribers.append(callback)

    def _apply(self, t: float, p: float) -> None:
        if p != self.current_price:
            self.current_price = p
            self.history.append(PricePoint(t, p))
            for cb in list(self._subscribers):
                cb(p)

    def _on_ticks(self, indices, _now: float) -> None:
        # Indices are positions in times[1:]/prices[1:], ascending — the
        # same order the generator path visits them.
        for i in indices:
            self._apply(float(self.times[i + 1]), float(self.prices[i + 1]))

    def _run(self):
        for t, p in zip(self.times[1:], self.prices[1:]):
            delay = t - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._apply(float(t), float(p))

    def mean_price(self) -> float:
        return float(np.mean([pt.price for pt in self.history]))
