"""Synthetic workloads: guest memory profiles, BLAST queries, spot-price
traces, and communication patterns.

Everything stochastic takes an explicit :class:`numpy.random.Generator`,
so experiments are exactly reproducible.
"""

from .blast import blast_job
from .comm_patterns import (
    PATTERNS,
    all_to_all,
    clustered,
    master_worker,
    ring,
    run_pattern,
)
from .memory_profiles import (
    MemoryProfile,
    PROFILES,
    database,
    generate_disk_fingerprints,
    idle,
    kernel_build,
    web_server,
)
from .terasort import terasort_job
from .traces import SpotPriceProcess, spot_price_trace

__all__ = [
    "MemoryProfile",
    "PATTERNS",
    "PROFILES",
    "SpotPriceProcess",
    "all_to_all",
    "blast_job",
    "clustered",
    "database",
    "generate_disk_fingerprints",
    "idle",
    "kernel_build",
    "master_worker",
    "ring",
    "run_pattern",
    "spot_price_trace",
    "terasort_job",
    "web_server",
]
