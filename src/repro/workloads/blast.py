"""The MapReduce BLAST workload (paper §II's application).

The paper validated sky computing by running "the MapReduce version of
the BLAST bioinformatics application in virtual Hadoop clusters built on
top of multiple distributed clouds".  BLAST-over-Hadoop is map-heavy and
embarrassingly parallel: each map task aligns a batch of query sequences
against a reference database (CPU-bound, minutes), emitting tiny outputs
that a handful of reducers merge.

Task-time variability is the one thing that matters for scaling shape
(stragglers bound the makespan tail), so per-task CPU costs are drawn
from a lognormal fit, the standard model for BLAST batch runtimes.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.job import MapReduceJob


def blast_job(rng: np.random.Generator, n_query_batches: int = 64,
              mean_batch_seconds: float = 90.0, sigma: float = 0.25,
              n_reduces: int = 1, db_shard_bytes: float = 8 * 2**20,
              output_bytes_per_map: float = 256 * 1024,
              name: str = "blast") -> MapReduceJob:
    """Build one BLAST job.

    Parameters
    ----------
    n_query_batches:
        Number of map tasks (query batches).
    mean_batch_seconds:
        Mean per-batch alignment time on a reference core.
    sigma:
        Lognormal shape (runtime variability across batches).
    db_shard_bytes:
        Input bytes a non-local map must fetch (query batch + DB shard
        delta; the database itself ships with the VM image).
    """
    if n_query_batches <= 0:
        raise ValueError("need at least one query batch")
    if mean_batch_seconds <= 0:
        raise ValueError("mean_batch_seconds must be positive")
    mu = np.log(mean_batch_seconds) - sigma ** 2 / 2.0
    map_cpu = rng.lognormal(mu, sigma, n_query_batches)
    reduce_cpu = np.full(n_reduces, 5.0)
    return MapReduceJob(
        name=name,
        map_cpu_seconds=map_cpu,
        reduce_cpu_seconds=reduce_cpu,
        split_bytes=db_shard_bytes,
        map_output_bytes=output_bytes_per_map,
    )
