"""Synthetic communication patterns.

Drive known traffic shapes between VMs so pattern detection (§III-C)
and communication-aware placement (the autonomic planner) can be
evaluated against an exact ground truth.  Patterns mirror the structures
distributed scientific applications exhibit: rings (halo exchange),
all-to-all (transposes/shuffles), master-worker, and clustered groups
(the case where placement matters most).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple


from ..network.flows import FlowScheduler
from ..network.transport import Transport
from ..simkernel import Process, Simulator

#: (src index, dst index, bytes) triples for one round.
PatternRound = List[Tuple[int, int, float]]


def ring(n: int, nbytes: float) -> PatternRound:
    """Each node sends to its successor."""
    return [(i, (i + 1) % n, nbytes) for i in range(n)]


def all_to_all(n: int, nbytes: float) -> PatternRound:
    """Every ordered pair exchanges ``nbytes``."""
    return [(i, j, nbytes) for i in range(n) for j in range(n) if i != j]


def master_worker(n: int, nbytes: float,
                  result_factor: float = 4.0) -> PatternRound:
    """Node 0 sends work to all; workers return larger results."""
    out = [(0, i, nbytes) for i in range(1, n)]
    out += [(i, 0, nbytes * result_factor) for i in range(1, n)]
    return out


def clustered(n: int, nbytes: float, group_size: int = 4,
              inter_group_fraction: float = 0.05) -> PatternRound:
    """Dense traffic within groups, sparse between them.

    The shape that motivates communication-aware placement: put each
    group in one cloud and almost nothing crosses the boundary.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    out: PatternRound = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            same = (i // group_size) == (j // group_size)
            volume = nbytes if same else nbytes * inter_group_fraction
            out.append((i, j, volume))
    return out


PATTERNS: dict = {
    "ring": ring,
    "all-to-all": all_to_all,
    "master-worker": master_worker,
    "clustered": clustered,
}


def run_pattern(sim: Simulator, scheduler: FlowScheduler, vms: Sequence,
                pattern: PatternRound, rounds: int = 1,
                interval: float = 1.0,
                recorder: Optional[Callable[[str, str, float, str], None]]
                = None,
                tag: str = "app") -> Process:
    """Execute ``rounds`` of a pattern as real flows between ``vms``.

    Each round launches every (src, dst, bytes) transfer concurrently,
    waits for all of them, then idles ``interval`` seconds.  The
    ``recorder`` (ground truth) is told application bytes.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    transport = Transport.of(scheduler)

    def _run():
        for _ in range(rounds):
            waits = []
            for src_i, dst_i, nbytes in pattern:
                src, dst = vms[src_i], vms[dst_i]
                if recorder is not None:
                    recorder(src.name, dst.name, nbytes, tag)
                flow = transport.data(
                    src.site, dst.site, nbytes, tag=tag,
                    src_vm=src.name, dst_vm=dst.name,
                )
                waits.append(flow.done)
            yield sim.all_of(waits)
            if interval > 0:
                yield sim.timeout(interval)

    return sim.process(_run(), name=f"pattern-{tag}")
