"""Guest memory/disk content generators with controlled duplication.

The literature the paper builds on (Difference Engine, Satori, Memory
Buddies, the CAS studies) reports that VM memory splits into three kinds
of content, in workload-dependent proportions:

* **zero pages** — unused or freed memory;
* **shared content** — kernel text, shared libraries, buffer-cache
  copies of common files: *identical across VMs running the same OS and
  applications* (this is Shrinker's inter-VM redundancy);
* **unique content** — application heaps, database buffers.

A :class:`MemoryProfile` captures those proportions plus the write
behavior (dirty rate, hot-set locality, and how much freshly written
content is itself common across the cluster).  The bundled profiles —
``idle``, ``web-server``, ``kernel-build``, ``database`` — span the
workload range the Shrinker evaluation sweeps ("30 to 40% depending on
workload").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from ..hypervisor.memory import (
    MemoryImage,
    UniqueContentFactory,
    ZERO_PAGE,
    pool_fingerprints,
)


@dataclass
class MemoryProfile:
    """Content mix and write behavior of one guest workload.

    Fractions must satisfy ``zero + shared <= 1``; the remainder is
    unique content.  ``os_pool`` names the shared-content namespace: VMs
    with the same ``os_pool`` share fingerprints (same OS image), which
    is what inter-VM deduplication exploits.
    """

    name: str
    zero_fraction: float
    shared_fraction: float
    dirty_rate: float  #: pages/second while the guest runs
    os_pool: str = "debian-base"
    #: Fraction of the address space forming the write-hot set.
    hot_fraction: float = 0.1
    #: Probability that a write lands in the hot set.
    hot_weight: float = 0.9
    #: Fraction of dirtied pages whose *new* content is shared (e.g.
    #: page-cache fills of common files) rather than unique.
    dirty_shared_fraction: float = 0.2
    #: Size of the pool shared writes draw from (smaller => more
    #: re-convergence onto already-transferred content).
    dirty_pool_size: int = 4096
    _unique: UniqueContentFactory = field(default_factory=UniqueContentFactory,
                                          repr=False)

    def __post_init__(self):
        if not 0 <= self.zero_fraction <= 1:
            raise ValueError("zero_fraction out of range")
        if not 0 <= self.shared_fraction <= 1:
            raise ValueError("shared_fraction out of range")
        if self.zero_fraction + self.shared_fraction > 1 + 1e-9:
            raise ValueError("zero + shared fractions exceed 1")
        if self.dirty_rate < 0:
            raise ValueError("dirty_rate must be >= 0")
        if not 0 < self.hot_fraction <= 1:
            raise ValueError("hot_fraction out of range")

    @property
    def unique_fraction(self) -> float:
        return 1.0 - self.zero_fraction - self.shared_fraction

    # -- initial contents ---------------------------------------------------

    def generate_memory(self, rng: np.random.Generator,
                        n_pages: int) -> MemoryImage:
        """Build one VM's initial memory image.

        Shared pages use pool indices ``0..n_shared`` so every VM built
        from this profile holds the *same* shared content; unique pages
        are globally fresh.  Page positions are shuffled so the hot set
        touches all content kinds.
        """
        n_zero = int(round(self.zero_fraction * n_pages))
        n_shared = int(round(self.shared_fraction * n_pages))
        n_shared = min(n_shared, n_pages - n_zero)
        n_unique = n_pages - n_zero - n_shared

        parts = []
        if n_zero:
            parts.append(np.full(n_zero, ZERO_PAGE, dtype=np.uint64))
        if n_shared:
            parts.append(
                pool_fingerprints(self.os_pool,
                                  np.arange(n_shared, dtype=np.uint64))
            )
        if n_unique:
            parts.append(self._unique.take(n_unique))
        fps = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)
        rng.shuffle(fps)
        return MemoryImage(n_pages, fingerprints=fps)

    # -- write behavior (Dirtier hooks) ------------------------------------

    def pick_indices(self, rng: np.random.Generator, n: int,
                     n_pages: int) -> np.ndarray:
        """Choose pages to dirty: hot-set biased, deduplicated."""
        hot_size = max(1, int(self.hot_fraction * n_pages))
        in_hot = rng.random(n) < self.hot_weight
        picks = np.where(
            in_hot,
            rng.integers(0, hot_size, n),
            rng.integers(0, n_pages, n),
        )
        return np.unique(picks)

    def dirty_values(self, rng: np.random.Generator, n: int,
                     vm=None) -> np.ndarray:
        """New contents for dirtied pages.

        A ``dirty_shared_fraction`` of writes produce content drawn from
        a small shared pool (identical across the cluster's VMs and
        often already transferred — dedup hits in later rounds); the
        rest is fresh unique content.
        """
        shared_mask = rng.random(n) < self.dirty_shared_fraction
        n_shared = int(shared_mask.sum())
        values = self._unique.take(n)
        if n_shared:
            pool_idx = rng.integers(0, self.dirty_pool_size, n_shared)
            values[shared_mask] = pool_fingerprints(
                f"{self.os_pool}:dirty", pool_idx.astype(np.uint64)
            )
        return values


# -- the workload catalogue (Shrinker's evaluation axis) ---------------------


def idle() -> MemoryProfile:
    """A freshly booted, mostly idle guest: lots of zero pages."""
    return MemoryProfile("idle", zero_fraction=0.30, shared_fraction=0.45,
                         dirty_rate=50, dirty_shared_fraction=0.5)


def web_server() -> MemoryProfile:
    """Static-content web serving: big shared buffer cache."""
    return MemoryProfile("web-server", zero_fraction=0.15,
                         shared_fraction=0.45, dirty_rate=800,
                         dirty_shared_fraction=0.35)


def kernel_build() -> MemoryProfile:
    """Compilation: high dirty rate, moderate sharing (sources, toolchain)."""
    return MemoryProfile("kernel-build", zero_fraction=0.10,
                         shared_fraction=0.35, dirty_rate=3000,
                         dirty_shared_fraction=0.25)


def database() -> MemoryProfile:
    """OLTP-style: mostly unique buffer pool, aggressive writes."""
    return MemoryProfile("database", zero_fraction=0.05,
                         shared_fraction=0.20, dirty_rate=6000,
                         dirty_shared_fraction=0.10)


#: Name -> constructor, in the order the benches sweep them.
PROFILES: Dict[str, Callable[[], MemoryProfile]] = {
    "idle": idle,
    "web-server": web_server,
    "kernel-build": kernel_build,
    "database": database,
}


def generate_disk_fingerprints(rng: np.random.Generator, n_blocks: int,
                               os_pool: str = "debian-base",
                               shared_fraction: float = 0.75,
                               unique_factory: UniqueContentFactory = None,
                               ) -> np.ndarray:
    """Disk-image contents: mostly the shared OS install, plus unique data.

    The CAS literature the paper cites found VM *images* even more
    redundant than memory: same distribution, same packages.
    """
    if not 0 <= shared_fraction <= 1:
        raise ValueError("shared_fraction out of range")
    factory = unique_factory or UniqueContentFactory()
    n_shared = int(round(shared_fraction * n_blocks))
    n_unique = n_blocks - n_shared
    parts = []
    if n_shared:
        parts.append(
            pool_fingerprints(f"{os_pool}:disk",
                              np.arange(n_shared, dtype=np.uint64))
        )
    if n_unique:
        parts.append(factory.take(n_unique))
    fps = np.concatenate(parts)
    rng.shuffle(fps)
    return fps
