"""A shuffle-heavy sort workload (the anti-BLAST).

The paper is explicit that sky computing favors a particular shape:
"the level of scaling depends on the type of applications:
embarrassingly parallel applications are the most suited for executing
on a distributed infrastructure."  TeraSort is the canonical opposite:
trivial map CPU, but every byte of input crosses the network in the
shuffle — so splitting the cluster across clouds drags the full dataset
over the WAN.  The E3 bench uses it to reproduce the crossover the
paper's caveat implies.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.job import MapReduceJob


def terasort_job(rng: np.random.Generator, n_maps: int = 32,
                 split_bytes: float = 64 * 2**20,
                 n_reduces: int = 8,
                 map_seconds_per_split: float = 4.0,
                 reduce_seconds: float = 8.0,
                 name: str = "terasort") -> MapReduceJob:
    """Build a sort job: light CPU, shuffle volume == input volume."""
    if n_maps <= 0 or n_reduces <= 0:
        raise ValueError("terasort needs maps and reduces")
    if split_bytes <= 0:
        raise ValueError("split_bytes must be positive")
    map_cpu = rng.uniform(0.9, 1.1, n_maps) * map_seconds_per_split
    reduce_cpu = rng.uniform(0.9, 1.1, n_reduces) * reduce_seconds
    return MapReduceJob(
        name=name,
        map_cpu_seconds=map_cpu,
        reduce_cpu_seconds=reduce_cpu,
        split_bytes=split_bytes,
        # Sort is volume-preserving: each map emits its whole split.
        map_output_bytes=split_bytes,
    )
