"""Scaling policies for the Elastic MapReduce service.

The paper (§IV): the service "will support dynamic addition and removal
of virtual nodes as well as policies for resource selection.  We also
plan to study how job deadlines can be included in this model to perform
intelligent resource selection."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mapreduce.engine import JobTracker
from ..mapreduce.job import MapReduceJob


def estimate_remaining_seconds(jt: JobTracker, job: MapReduceJob) -> float:
    """Projected seconds to job completion at the current slot count.

    Remaining CPU work (pending tasks in full, running tasks at half —
    the expected residual of an in-flight task) divided by total slots.
    """
    run = jt.current
    if run is None or run.job is not job or run.finished:
        return 0.0
    remaining = 0.0
    for task in run.pending_maps:
        remaining += job.map_cpu[task.index]
    for task in run.pending_reduces:
        remaining += job.reduce_cpu[task.index]
    for task in run.running:
        cpu = (job.map_cpu if task.kind.value == "map"
               else job.reduce_cpu)[task.index]
        remaining += cpu / 2.0
    if remaining == 0.0:
        return 0.0
    slots = jt.total_slots
    if slots == 0:
        return float("inf")
    return remaining / slots


@dataclass
class StaticPolicy:
    """No scaling: run with whatever the cluster has."""

    def decide(self, jt: JobTracker, job: MapReduceJob,
               deadline: Optional[float], now: float) -> int:
        return 0


@dataclass
class DeadlineScalePolicy:
    """Scale the cluster to track a deadline: grow when the projection
    misses it, shrink back when comfortably ahead.

    Parameters
    ----------
    check_interval:
        Seconds between projections.
    slack:
        Safety margin: target finishing ``slack`` fraction early.
    max_extra_nodes:
        Upper bound on nodes this policy may add in total.
    step:
        Nodes added/removed per decision (provisioning has fixed costs,
        so batches beat one-at-a-time).
    scale_in:
        Also release scale-out nodes mid-job once the projection shows
        the smaller cluster still meets the deadline comfortably.
    scale_in_margin:
        Shrink only if the post-shrink projection uses at most this
        fraction of the remaining budget.
    """

    check_interval: float = 60.0
    slack: float = 0.15
    max_extra_nodes: int = 32
    step: int = 2
    scale_in: bool = False
    scale_in_margin: float = 0.6

    def decide(self, jt: JobTracker, job: MapReduceJob,
               deadline: Optional[float], now: float) -> int:
        """Nodes to add (positive), remove (negative), or 0."""
        if deadline is None:
            return 0
        remaining = estimate_remaining_seconds(jt, job)
        if remaining == 0.0:
            return 0
        # More slots cannot help once every outstanding task already has
        # one (the tail is stragglers, not queueing).
        run = jt.current
        if run is not None and run.job is job:
            outstanding = (len(run.pending_maps) + len(run.pending_reduces)
                           + len(run.running))
            if outstanding <= jt.total_slots:
                return 0
        budget = (deadline - now) * (1.0 - self.slack)
        if budget <= 0:
            return self.step  # already late: add capacity anyway
        slots = max(1, jt.total_slots)
        slots_per_node = max(1, slots // max(1, len(jt.trackers)))
        if remaining <= budget:
            if self.scale_in:
                # Would the cluster minus one step still be early?
                shrunk_slots = slots - self.step * slots_per_node
                if shrunk_slots >= slots_per_node:
                    projected = remaining * slots / shrunk_slots
                    if projected <= budget * self.scale_in_margin:
                        return -self.step
            return 0
        # Slots needed to hit the budget, translated into nodes.
        needed_slots = remaining * slots / budget
        deficit_slots = needed_slots - slots
        nodes = int(deficit_slots // slots_per_node) + 1
        return max(self.step, min(nodes, self.max_extra_nodes))
