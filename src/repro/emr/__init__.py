"""Elastic MapReduce over distributed clouds (paper §IV): managed
clusters, deadline-driven scaling, cost accounting.
"""

from .policies import (
    DeadlineScalePolicy,
    StaticPolicy,
    estimate_remaining_seconds,
)
from .service import ElasticMapReduceService, EMRCluster, EMRJobReport

__all__ = [
    "DeadlineScalePolicy",
    "EMRCluster",
    "EMRJobReport",
    "ElasticMapReduceService",
    "StaticPolicy",
    "estimate_remaining_seconds",
]
