"""The Elastic MapReduce service over distributed clouds (paper §IV).

    "...we are working on implementing an Elastic MapReduce service
    harnessing resources from distributed clouds.  This service will
    support dynamic addition and removal of virtual nodes as well as
    policies for resource selection."

:class:`ElasticMapReduceService` provisions managed MapReduce clusters
through the federation (so they may span clouds), runs jobs on them, and
— under a :class:`~repro.emr.policies.DeadlineScalePolicy` — grows the
cluster mid-job from whichever cloud the resource-selection policy
picks, then releases the extra nodes when the job finishes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..mapreduce.elastic import ElasticCluster
from ..mapreduce.engine import JobTracker
from ..mapreduce.job import JobResult, MapReduceJob
from ..simkernel import Process
from ..sky.federation import Federation
from ..sky.scheduler import PlacementPolicy
from ..sky.virtual_cluster import VirtualCluster
from .policies import DeadlineScalePolicy, StaticPolicy


@dataclass
class EMRJobReport:
    """Everything one managed job run reports."""

    result: JobResult
    deadline: Optional[float]
    deadline_met: Optional[bool]
    nodes_added: int
    nodes_released: int
    compute_cost: float
    scale_events: List[float] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.result.makespan


class EMRCluster:
    """A managed MapReduce cluster: VMs + engine + elasticity."""

    _ids = itertools.count(1)

    def __init__(self, service: "ElasticMapReduceService",
                 cluster: VirtualCluster, jobtracker: JobTracker):
        self.id = next(EMRCluster._ids)
        self.service = service
        self.cluster = cluster
        self.jobtracker = jobtracker
        self.elastic = ElasticCluster(service.federation.sim, jobtracker)
        for vm in cluster.vms:
            self.elastic.add_node(vm)
        #: Nodes the scaler added (released after their job).
        self.scaled_nodes: List = []

    @property
    def size(self) -> int:
        return len(self.elastic)

    def __repr__(self):
        return f"<EMRCluster #{self.id} nodes={self.size}>"


class ElasticMapReduceService:
    """Managed MapReduce over the federation."""

    def __init__(self, federation: Federation, image_name: str,
                 rng: Optional[np.random.Generator] = None,
                 traffic_recorder=None, speculative: bool = False):
        self.federation = federation
        self.image_name = image_name
        self.rng = rng or np.random.default_rng(0)
        self.traffic_recorder = traffic_recorder
        #: Enable Hadoop-style speculative execution on managed clusters.
        self.speculative = speculative

    # -- cluster management --------------------------------------------------

    def create_cluster(self, n_nodes: int,
                       policy: Optional[PlacementPolicy] = None,
                       name: Optional[str] = None) -> Process:
        """Provision a managed cluster (yields an :class:`EMRCluster`)."""
        return self.federation.sim.process(
            self._create(n_nodes, policy, name), name="emr-create",
        )

    def _create(self, n_nodes, policy, name):
        cluster = yield self.federation.create_virtual_cluster(
            self.image_name, n_nodes, policy=policy, name=name,
        )
        jt = JobTracker(
            self.federation.sim, self.federation.scheduler,
            rng=self.rng, traffic_recorder=self.traffic_recorder,
            speculative=self.speculative,
        )
        return EMRCluster(self, cluster, jt)

    def release_cluster(self, emr: EMRCluster) -> float:
        """Terminate every node; returns the compute cost billed."""
        cost = 0.0
        for vm in list(emr.elastic.vms):
            emr.elastic.remove_node(vm, graceful=True)
        workers = [vm for vm in emr.cluster.vms
                   if vm is not emr.cluster.master]
        cost += self.federation.shrink_cluster(emr.cluster, workers)
        master = emr.cluster.master
        if master is not None:
            self.federation.overlay.unregister(master)
            cost += self.federation.cloud_of(master).terminate(master)
            emr.cluster.vms.remove(master)
        return cost

    # -- job execution ---------------------------------------------------

    def run_job(self, emr: EMRCluster, job: MapReduceJob,
                deadline: Optional[float] = None,
                scale_policy=None,
                selection_policy: Optional[PlacementPolicy] = None
                ) -> Process:
        """Run ``job`` with optional deadline-driven scaling.

        ``deadline`` is absolute simulation time.  Yields an
        :class:`EMRJobReport`.
        """
        scale_policy = scale_policy or StaticPolicy()
        return self.federation.sim.process(
            self._run_job(emr, job, deadline, scale_policy,
                          selection_policy),
            name=f"emr-job-{job.name}",
        )

    def _run_job(self, emr, job, deadline, scale_policy, selection_policy):
        sim = self.federation.sim
        cost_before = sum(
            c.compute_cost() for c in self.federation.clouds.values()
        )
        job_proc = emr.jobtracker.submit(job)
        scale_events: List[float] = []
        counters = {"added": 0, "removed": 0}

        interval = getattr(scale_policy, "check_interval", None)
        if interval:
            sim.process(
                self._scale_controller(emr, job, deadline, scale_policy,
                                       selection_policy, job_proc,
                                       scale_events, counters),
                name="emr-scaler",
            )
        result = yield job_proc

        # Release scale-out nodes: the job is done, stop paying for them.
        released = counters["removed"]
        for vm in list(emr.scaled_nodes):
            if vm in emr.elastic.vms:
                emr.elastic.remove_node(vm, graceful=True)
            self.federation.shrink_cluster(emr.cluster, [vm])
            emr.scaled_nodes.remove(vm)
            released += 1

        cost_after = sum(
            c.compute_cost() for c in self.federation.clouds.values()
        )
        return EMRJobReport(
            result=result,
            deadline=deadline,
            deadline_met=(bool(result.finished_at <= deadline)
                          if deadline is not None else None),
            nodes_added=counters["added"],
            nodes_released=released,
            compute_cost=cost_after - cost_before,
            scale_events=scale_events,
        )

    def _scale_in_victims(self, emr, want: int):
        """Scale-out nodes safe to remove right now."""
        run = emr.jobtracker.current
        holders = set()
        if run is not None and not run.finished:
            if run.reduces_done < run.job.n_reduces:
                holders = {name for name, _site in run.map_outputs.values()}
        victims = [vm for vm in emr.scaled_nodes
                   if vm.name not in holders]
        return victims[:want]

    def _scale_controller(self, emr, job, deadline, policy,
                          selection_policy, job_proc, scale_events,
                          counters):
        sim = self.federation.sim
        while not job_proc.triggered:
            yield sim.timeout(policy.check_interval)
            if job_proc.triggered:
                return
            n = policy.decide(emr.jobtracker, job, deadline, sim.now)
            if n < 0 and emr.scaled_nodes:
                # Scale-in: hand back scale-out nodes we no longer need.
                # Removing a node whose map outputs reducers still need
                # would force re-execution (Hadoop semantics), so only
                # nodes holding no needed outputs are eligible.
                victims = self._scale_in_victims(emr, -n)
                if not victims:
                    continue
                drains = []
                for vm in victims:
                    if vm in emr.elastic.vms:
                        drains.append(
                            emr.elastic.remove_node(vm, graceful=True))
                if drains:
                    yield sim.all_of(drains)
                for vm in victims:
                    self.federation.shrink_cluster(emr.cluster, [vm])
                    emr.scaled_nodes.remove(vm)
                    counters["removed"] += 1
                scale_events.append(sim.now)
                continue
            if n <= 0:
                continue
            n = min(n, self.federation.total_capacity())
            if n <= 0:
                continue
            # Resource selection for the new nodes (paper: deadline-aware
            # *and* cost-aware selection).
            cloud_name = None
            if selection_policy is not None:
                from ..cloud.provider import InstanceSpec
                alloc = selection_policy.allocate(
                    list(self.federation.clouds.values()), n, InstanceSpec())
                cloud_name = max(alloc, key=alloc.get)
            try:
                new_vms = yield emr.cluster.grow(n, cloud_name=cloud_name)
            except Exception:
                continue  # provisioning race; retry next tick
            for vm in new_vms:
                emr.elastic.add_node(vm)
                emr.scaled_nodes.append(vm)
                counters["added"] += 1
            scale_events.append(sim.now)
