"""VM image propagation strategies (the paper's fast-instantiation work).

Deploying a virtual cluster means getting the image's data onto many
physical hosts.  The paper (§II) contributes two mechanisms on top of
the naive baseline, both reproduced here:

* :class:`UnicastPropagation` — the baseline: the repository node copies
  the full image to every host; the repository uplink is the bottleneck
  and deployment time grows **linearly** with cluster size.
* :class:`BroadcastChainPropagation` — Kastafior-style: hosts form a
  pipeline and the image streams through all of them at once; time is
  roughly **flat** in cluster size (one image transfer plus per-hop
  setup).
* :class:`CowPropagation` — copy-on-write backing images: if a host
  already caches the base image, instance creation moves (almost) no
  data — "near-instant virtual machine creation".  Cache misses fall
  back to the chained transfer of the base, so chain+CoW compose.

Each strategy implements ``deploy(image, hosts) -> process`` returning a
:class:`DeploymentStats`; the per-host :class:`HostImageCache` records
which bases are already present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..hypervisor.host import PhysicalHost
from ..network.flows import FlowScheduler
from ..network.transport import Transport
from ..obs.trace import tracer_of
from ..simkernel import Process, Simulator
from .images import VMImage


@dataclass
class DeploymentStats:
    """Outcome of propagating one image to a set of hosts."""

    image: str
    n_hosts: int
    bytes_moved: float
    started_at: float
    finished_at: float
    strategy: str
    cache_hits: int = 0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class HostImageCache:
    """Which base images each host already holds."""

    def __init__(self):
        self._cache: Dict[str, Set[str]] = {}

    def has(self, host: PhysicalHost, image: str) -> bool:
        return image in self._cache.get(host.name, ())

    def put(self, host: PhysicalHost, image: str) -> None:
        self._cache.setdefault(host.name, set()).add(image)

    def evict(self, host: PhysicalHost, image: str) -> None:
        self._cache.get(host.name, set()).discard(image)


class _PropagationBase:
    """Common plumbing: simulator, flows, repository uplink cap."""

    #: Human-readable strategy id (overridden).
    name = "base"

    def __init__(self, sim: Simulator, scheduler: FlowScheduler,
                 cache: HostImageCache,
                 repo_uplink: float = 125e6):
        self.sim = sim
        self.transport = Transport.of(scheduler)
        self.scheduler = self.transport.scheduler
        self.cache = cache
        #: The repository node's NIC (bytes/s): the unicast bottleneck.
        self.repo_uplink = repo_uplink

    def deploy(self, image: VMImage, hosts: Sequence[PhysicalHost],
               span=None) -> Process:
        """Propagate ``image`` so that every host in ``hosts`` holds it.
        ``span`` optionally parents the deployment's trace span."""
        if not hosts:
            raise ValueError("no hosts to deploy to")
        sites = {h.site for h in hosts}
        if len(sites) != 1:
            raise ValueError(
                "one deployment targets one site; split per-site first"
            )
        return self.sim.process(self._traced_deploy(image, list(hosts), span),
                                name=f"deploy-{image.name}")

    def _traced_deploy(self, image, hosts, parent_span):
        dspan = tracer_of(self.sim).start(
            f"propagate:{image.name}", parent=parent_span,
            track=f"propagate:{hosts[0].site}",
            image=image.name, strategy=self.name, hosts=len(hosts),
        )
        stats = yield from self._deploy(image, hosts, dspan)
        dspan.set(bytes_moved=stats.bytes_moved,
                  cache_hits=stats.cache_hits).end()
        return stats

    def _deploy(self, image, hosts, span):  # pragma: no cover - abstract
        raise NotImplementedError
        yield


class UnicastPropagation(_PropagationBase):
    """Baseline: one full copy per host, all from the repository node.

    The copies run concurrently but share the repository uplink, so the
    aggregate time scales linearly with the number of cache-miss hosts.
    """

    name = "unicast"

    def _deploy(self, image: VMImage, hosts: List[PhysicalHost], span=None):
        started = self.sim.now
        site = hosts[0].site
        misses = [h for h in hosts if not self.cache.has(h, image.name)]
        hits = len(hosts) - len(misses)
        moved = 0.0
        if misses:
            # All copies leave the repository at once and share its
            # uplink; each is additionally a LAN flow.
            per_host_cap = self.repo_uplink / len(misses)
            flows = [
                self.transport.propagation(
                    site, site, image.size_bytes,
                    rate_cap=per_host_cap, tag="image-unicast",
                    image=image.name, host=h.name, span=span,
                )
                for h in misses
            ]
            yield self.sim.all_of([f.done for f in flows])
            moved = image.size_bytes * len(misses)
            for h in misses:
                self.cache.put(h, image.name)
        return DeploymentStats(image.name, len(hosts), moved, started,
                               self.sim.now, self.name, cache_hits=hits)


class BroadcastChainPropagation(_PropagationBase):
    """Kastafior-style pipelined broadcast: repo -> h1 -> h2 -> ... -> hN.

    Every byte traverses each hop once, but hops run concurrently, so
    total time ~= one image transfer + per-hop pipeline setup.
    """

    name = "broadcast-chain"

    def __init__(self, *args, hop_setup: float = 0.02, **kwargs):
        super().__init__(*args, **kwargs)
        #: Connection-establishment cost added per chain hop.
        self.hop_setup = hop_setup

    def _deploy(self, image: VMImage, hosts: List[PhysicalHost], span=None):
        started = self.sim.now
        site = hosts[0].site
        misses = [h for h in hosts if not self.cache.has(h, image.name)]
        hits = len(hosts) - len(misses)
        moved = 0.0
        if misses:
            # The chain is throughput-bound by the slowest hop (the repo
            # uplink or the LAN); pipelining makes the stream cross all
            # hosts in (almost) the time of a single transfer.
            setup = self.hop_setup * len(misses)
            sspan = tracer_of(self.sim).start(
                "chain-setup", parent=span, hops=len(misses))
            yield self.sim.timeout(setup)
            sspan.end()
            flow = self.transport.propagation(
                site, site, image.size_bytes,
                rate_cap=self.repo_uplink, tag="image-chain",
                image=image.name, chain_length=len(misses), span=span,
            )
            yield flow.done
            moved = image.size_bytes * len(misses)  # bytes over the LAN
            for h in misses:
                self.cache.put(h, image.name)
        return DeploymentStats(image.name, len(hosts), moved, started,
                               self.sim.now, self.name, cache_hits=hits)


class CowPropagation(_PropagationBase):
    """Copy-on-write instantiation over cached (or chained-in) bases.

    Hosts holding the base pay only overlay creation (milliseconds);
    missing bases are first brought in with the chained broadcast, then
    cached for every later deployment — so the second cluster on the
    same hosts starts near-instantly.
    """

    name = "cow"

    def __init__(self, *args, overlay_setup: float = 0.05,
                 chain: BroadcastChainPropagation = None, **kwargs):
        super().__init__(*args, **kwargs)
        #: qcow2-style overlay-file creation time per host (parallel).
        self.overlay_setup = overlay_setup
        self._chain = chain or BroadcastChainPropagation(
            self.sim, self.scheduler, self.cache,
            repo_uplink=self.repo_uplink,
        )

    def _deploy(self, image: VMImage, hosts: List[PhysicalHost], span=None):
        started = self.sim.now
        misses = [h for h in hosts if not self.cache.has(h, image.name)]
        hits = len(hosts) - len(misses)
        moved = 0.0
        if misses:
            stats = yield self._chain.deploy(image, misses, span=span)
            moved = stats.bytes_moved
        # Overlay creation on all hosts happens in parallel.
        ospan = tracer_of(self.sim).start(
            "overlay-setup", parent=span, hosts=len(hosts))
        yield self.sim.timeout(self.overlay_setup)
        ospan.end()
        return DeploymentStats(image.name, len(hosts), moved, started,
                               self.sim.now, self.name, cache_hits=hits)


#: Strategy name -> class, for configuration and the startup bench.
STRATEGIES = {
    cls.name: cls
    for cls in (UnicastPropagation, BroadcastChainPropagation, CowPropagation)
}
