"""Instance pricing: on-demand rates and usage-based cost accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class InstancePricing:
    """Per-cloud price card (the paper envisions these becoming dynamic)."""

    on_demand_hourly: float = 0.10
    #: Reference spot price around which the market trace fluctuates.
    spot_base_hourly: float = 0.03


class UsageMeter:
    """Accumulates instance-hours and converts them to cost."""

    def __init__(self, pricing: InstancePricing):
        self.pricing = pricing
        self._open: Dict[str, Tuple[float, float]] = {}  # vm -> (start, rate)
        self._closed: List[Tuple[str, float, float, float]] = []

    def start(self, vm_name: str, at: float, hourly_rate: float = None) -> None:
        if vm_name in self._open:
            raise ValueError(f"{vm_name!r} is already metered")
        rate = (self.pricing.on_demand_hourly
                if hourly_rate is None else hourly_rate)
        self._open[vm_name] = (at, rate)

    def stop(self, vm_name: str, at: float) -> float:
        """Close the meter; returns the cost of this instance's run."""
        try:
            start, rate = self._open.pop(vm_name)
        except KeyError:
            raise ValueError(f"{vm_name!r} is not metered") from None
        if at < start:
            raise ValueError("stop before start")
        cost = (at - start) / 3600.0 * rate
        self._closed.append((vm_name, start, at, cost))
        return cost

    def rebill(self, vm_name: str, at: float, hourly_rate: float) -> None:
        """Change a running instance's rate from ``at`` onward: the
        segment billed so far is closed at the old rate and a new one
        opens at ``hourly_rate`` (spot-market re-pricing, billing
        hand-offs).  A no-op when the rate is unchanged."""
        try:
            start, rate = self._open[vm_name]
        except KeyError:
            raise ValueError(f"{vm_name!r} is not metered") from None
        if at < start:
            raise ValueError("rebill before segment start")
        if hourly_rate == rate:
            return
        cost = (at - start) / 3600.0 * rate
        self._closed.append((vm_name, start, at, cost))
        self._open[vm_name] = (at, hourly_rate)

    def current_rate(self, vm_name: str) -> float:
        """The hourly rate the instance is currently billed at."""
        try:
            return self._open[vm_name][1]
        except KeyError:
            raise ValueError(f"{vm_name!r} is not metered") from None

    def segments(self, vm_name: str) -> List[Tuple[float, float, float]]:
        """Closed billing segments for ``vm_name`` as ``(start, stop,
        cost)`` tuples, in billing order."""
        return [(start, stop, cost)
                for name, start, stop, cost in self._closed
                if name == vm_name]

    def cost(self, now: float) -> float:
        """Total cost including still-running instances up to ``now``."""
        closed = sum(c for _, _, _, c in self._closed)
        running = sum(
            (now - start) / 3600.0 * rate
            for start, rate in self._open.values()
        )
        return closed + running

    @property
    def running_count(self) -> int:
        return len(self._open)
