"""The IaaS cloud toolkit (Nimbus stand-in): provisioning, images,
propagation strategies, contextualization, pricing, and the spot market.
"""

from .contextualization import (
    CONTEXT_MESSAGE_BYTES,
    ContextBroker,
    ContextualizationResult,
)
from .images import ImageError, ImageRepository, VMImage, make_image
from .pricing import InstancePricing, UsageMeter
from .propagation import (
    BroadcastChainPropagation,
    CowPropagation,
    DeploymentStats,
    HostImageCache,
    STRATEGIES,
    UnicastPropagation,
)
from .provider import Cloud, CloudError, InstanceSpec, QuotaExceeded
from .spot import SpotInstance, SpotMarket, SpotState

__all__ = [
    "BroadcastChainPropagation",
    "CONTEXT_MESSAGE_BYTES",
    "Cloud",
    "CloudError",
    "ContextBroker",
    "ContextualizationResult",
    "CowPropagation",
    "DeploymentStats",
    "HostImageCache",
    "ImageError",
    "ImageRepository",
    "InstancePricing",
    "InstanceSpec",
    "QuotaExceeded",
    "STRATEGIES",
    "SpotInstance",
    "SpotMarket",
    "SpotState",
    "UnicastPropagation",
    "UsageMeter",
    "VMImage",
    "make_image",
]
