"""The spot market: bid-priced instances and reclamation.

Classic spot semantics (the paper's §IV baseline): an instance runs
while the market price stays at or below its bid; when the price rises
above it, the provider reclaims the capacity and **kills** the instance,
losing its in-progress work.

The paper proposes *migratable spot instances* instead: on reclamation
the instance live-migrates to another cloud.  The market supports this
through a pluggable ``reclaim_handler``: return True to signal the VM
was rescued (moved away) rather than killed.  The handler itself —
which needs the federation and the Shrinker migrator — lives in
:mod:`repro.sky.spot_manager` to keep layering clean.

Two ways onto the market:

* :meth:`SpotMarket.request_spot` — the provider launches a fresh
  instance (the classic customer API);
* :meth:`SpotMarket.enroll` — an *already-running* instance (e.g. one
  node of a leased virtual cluster) is switched to spot pricing.  Its
  lifecycle stays with whoever provisioned it; :meth:`SpotMarket.retire`
  hands it back to on-demand terms without touching the VM.

Billing follows the market: spot instances are metered at
``min(market price, bid)`` and re-rated on every price change, so a
spot-backed hour is never billed above the bid.  Every reclamation
episode resolves exactly once — to ``"rescued"``, ``"reclaimed"``,
``"survived"`` (price receded within the grace window) or ``"closed"``
(customer terminated it mid-episode) — reported through the optional
``on_resolution`` callback; the per-instance ``reclaim_event`` fires
only for the two terminal outcomes, and only once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from ..hypervisor.vm import VirtualMachine
from ..simkernel import Event, Simulator
from ..workloads.traces import SpotPriceProcess
from .provider import Cloud, CloudError


class SpotState(Enum):
    RUNNING = "running"
    RECLAIMED = "reclaimed"  # killed by the provider
    RESCUED = "rescued"  # migrated away before the kill
    CLOSED = "closed"  # terminated (or retired) by the customer


@dataclass
class SpotInstance:
    """One spot-priced instance."""

    vm: VirtualMachine
    bid: float
    cloud: Cloud
    state: SpotState = SpotState.RUNNING
    launched_at: float = 0.0
    ended_at: Optional[float] = None
    #: Fires when the provider reclaims (value: "reclaimed"/"rescued").
    reclaim_event: Optional[Event] = None
    #: True while a reclamation episode is in flight (price crossed the
    #: bid, outcome not yet resolved) — further price changes above the
    #: bid must not open a second episode for the same instance.
    reclaiming: bool = field(default=False, repr=False)

    @property
    def alive(self) -> bool:
        return self.state is SpotState.RUNNING


class SpotMarket:
    """Runs one cloud's spot market over a price process."""

    _ids = itertools.count()

    def __init__(self, sim: Simulator, cloud: Cloud,
                 prices: SpotPriceProcess,
                 reclaim_grace: float = 120.0):
        self.sim = sim
        self.cloud = cloud
        self.prices = prices
        #: Warning window between the price crossing and the kill
        #: (EC2 gives two minutes) — the window a migratable spot
        #: instance uses to escape.
        self.reclaim_grace = reclaim_grace
        self.instances: List[SpotInstance] = []
        #: ``handler(instance) -> process`` returning True if the VM was
        #: moved to safety during the grace window.
        self.reclaim_handler: Optional[Callable] = None
        #: ``on_resolution(instance, outcome)`` fires exactly once per
        #: reclamation episode with "rescued", "reclaimed", "survived"
        #: or "closed" — the hook economic layers build accounting on.
        self.on_resolution: Optional[Callable[[SpotInstance, str], None]] = None
        prices.subscribe(self._on_price_change)

    @property
    def current_price(self) -> float:
        return self.prices.current_price

    # -- billing ---------------------------------------------------------

    def _spot_rate(self, inst: SpotInstance) -> float:
        """Spot billing never exceeds the bid (the customer's cap)."""
        return min(self.current_price, inst.bid)

    def _rerate(self, inst: SpotInstance) -> None:
        if inst.alive and inst.vm in self.cloud.instances:
            self.cloud.meter.rebill(inst.vm.name, self.sim.now,
                                    self._spot_rate(inst))

    # -- customer API ---------------------------------------------------

    def request_spot(self, image_name: str, bid: float,
                     memory_factory=None, **run_kwargs):
        """Launch one spot instance; yields a :class:`SpotInstance`.

        The request is rejected immediately if the bid is below the
        current price (matching provider behavior).
        """
        if bid <= 0:
            raise ValueError("bid must be positive")
        if bid < self.current_price:
            raise ValueError(
                f"bid {bid} below current price {self.current_price}"
            )
        return self.sim.process(
            self._launch(image_name, bid, memory_factory, run_kwargs),
            name="spot-request",
        )

    def _launch(self, image_name, bid, memory_factory, run_kwargs):
        vms = yield self.cloud.run_instances(
            image_name, 1, memory_factory=memory_factory, **run_kwargs
        )
        inst = SpotInstance(vm=vms[0], bid=bid, cloud=self.cloud,
                            launched_at=self.sim.now,
                            reclaim_event=self.sim.event())
        self.instances.append(inst)
        self._rerate(inst)
        return inst

    def enroll(self, vm: VirtualMachine, bid: float) -> SpotInstance:
        """Switch an already-running instance of this cloud to spot
        pricing at ``bid``; returns its :class:`SpotInstance`.

        The VM's lifecycle (provisioning, lease teardown) stays with the
        caller — the market only re-prices it and subjects it to
        reclamation.  Rejected if the bid is below the current price or
        the VM is not billed by this cloud.
        """
        if bid <= 0:
            raise ValueError("bid must be positive")
        if bid < self.current_price:
            raise ValueError(
                f"bid {bid} below current price {self.current_price}"
            )
        if vm not in self.cloud.instances:
            raise CloudError(
                f"{vm.name!r} is not an instance of {self.cloud.name!r}"
            )
        if any(i.vm is vm and i.alive for i in self.instances):
            raise ValueError(f"{vm.name!r} is already on the spot market")
        inst = SpotInstance(vm=vm, bid=bid, cloud=self.cloud,
                            launched_at=self.sim.now,
                            reclaim_event=self.sim.event())
        self.instances.append(inst)
        self._rerate(inst)
        return inst

    def retire(self, inst: SpotInstance) -> None:
        """Take an enrolled instance off spot terms without touching the
        VM: billing returns to the on-demand rate, pending reclamation
        episodes resolve as "closed"."""
        if inst.state is not SpotState.RUNNING:
            return
        inst.state = SpotState.CLOSED
        inst.ended_at = self.sim.now
        if inst.vm in self.cloud.instances:
            self.cloud.meter.rebill(inst.vm.name, self.sim.now,
                                    self.cloud.pricing.on_demand_hourly)

    def close(self, inst: SpotInstance) -> None:
        """Customer-initiated termination."""
        if inst.state is SpotState.RUNNING:
            inst.state = SpotState.CLOSED
            inst.ended_at = self.sim.now
            self.cloud.terminate(inst.vm)

    # -- reclamation -----------------------------------------------------

    def _on_price_change(self, price: float) -> None:
        for inst in list(self.instances):
            if not inst.alive:
                continue
            self._rerate(inst)
            if price > inst.bid and not inst.reclaiming:
                inst.reclaiming = True
                self.sim.process(self._reclaim(inst),
                                 name=f"reclaim-{inst.vm.name}")

    def _resolve(self, inst: SpotInstance, outcome: str) -> None:
        """Close one reclamation episode with exactly one outcome."""
        inst.reclaiming = False
        if (outcome in ("rescued", "reclaimed")
                and inst.reclaim_event is not None
                and not inst.reclaim_event.triggered):
            inst.reclaim_event.succeed(outcome)
        if self.on_resolution is not None:
            self.on_resolution(inst, outcome)

    def _reclaim(self, inst: SpotInstance):
        # Grace window (the provider's reclamation warning): the paper's
        # migratable spot instance escapes during it.
        deadline = self.sim.now + self.reclaim_grace
        rescued = False
        if self.reclaim_handler is not None:
            rescued = yield self.reclaim_handler(inst)
        remaining = deadline - self.sim.now
        if remaining > 0:
            yield self.sim.timeout(remaining)
        if not inst.alive:
            # Closed/retired during the grace window.
            self._resolve(inst, "closed")
            return
        # Re-check: the price may have dropped back during the grace.
        if not rescued and self.current_price <= inst.bid:
            self._resolve(inst, "survived")
            return
        inst.ended_at = self.sim.now
        if rescued:
            inst.state = SpotState.RESCUED
            # The VM left this cloud alive: stop billing it here if the
            # migration's billing hand-off has not already — from now on
            # it is metered at the destination cloud's price.
            if inst.vm in self.cloud.instances:
                self.cloud.release(inst.vm)
            self._resolve(inst, "rescued")
        else:
            inst.state = SpotState.RECLAIMED
            self.cloud.terminate(inst.vm)
            self._resolve(inst, "reclaimed")
