"""The spot market: bid-priced instances and reclamation.

Classic spot semantics (the paper's §IV baseline): an instance runs
while the market price stays at or below its bid; when the price rises
above it, the provider reclaims the capacity and **kills** the instance,
losing its in-progress work.

The paper proposes *migratable spot instances* instead: on reclamation
the instance live-migrates to another cloud.  The market supports this
through a pluggable ``reclaim_handler``: return True to signal the VM
was rescued (moved away) rather than killed.  The handler itself —
which needs the federation and the Shrinker migrator — lives in
:mod:`repro.sky.spot_manager` to keep layering clean.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

from ..hypervisor.vm import VirtualMachine
from ..simkernel import Event, Simulator
from ..workloads.traces import SpotPriceProcess
from .provider import Cloud


class SpotState(Enum):
    RUNNING = "running"
    RECLAIMED = "reclaimed"  # killed by the provider
    RESCUED = "rescued"  # migrated away before the kill
    CLOSED = "closed"  # terminated by the customer


@dataclass
class SpotInstance:
    """One spot-priced instance."""

    vm: VirtualMachine
    bid: float
    cloud: Cloud
    state: SpotState = SpotState.RUNNING
    launched_at: float = 0.0
    ended_at: Optional[float] = None
    #: Fires when the provider reclaims (value: "reclaimed"/"rescued").
    reclaim_event: Optional[Event] = None

    @property
    def alive(self) -> bool:
        return self.state is SpotState.RUNNING


class SpotMarket:
    """Runs one cloud's spot market over a price process."""

    _ids = itertools.count()

    def __init__(self, sim: Simulator, cloud: Cloud,
                 prices: SpotPriceProcess,
                 reclaim_grace: float = 120.0):
        self.sim = sim
        self.cloud = cloud
        self.prices = prices
        #: Warning window between the price crossing and the kill
        #: (EC2 gives two minutes) — the window a migratable spot
        #: instance uses to escape.
        self.reclaim_grace = reclaim_grace
        self.instances: List[SpotInstance] = []
        #: ``handler(instance) -> process`` returning True if the VM was
        #: moved to safety during the grace window.
        self.reclaim_handler: Optional[Callable] = None
        prices.subscribe(self._on_price_change)

    @property
    def current_price(self) -> float:
        return self.prices.current_price

    # -- customer API ---------------------------------------------------

    def request_spot(self, image_name: str, bid: float,
                     memory_factory=None, **run_kwargs):
        """Launch one spot instance; yields a :class:`SpotInstance`.

        The request is rejected immediately if the bid is below the
        current price (matching provider behavior).
        """
        if bid <= 0:
            raise ValueError("bid must be positive")
        if bid < self.current_price:
            raise ValueError(
                f"bid {bid} below current price {self.current_price}"
            )
        return self.sim.process(
            self._launch(image_name, bid, memory_factory, run_kwargs),
            name="spot-request",
        )

    def _launch(self, image_name, bid, memory_factory, run_kwargs):
        vms = yield self.cloud.run_instances(
            image_name, 1, memory_factory=memory_factory, **run_kwargs
        )
        inst = SpotInstance(vm=vms[0], bid=bid, cloud=self.cloud,
                            launched_at=self.sim.now,
                            reclaim_event=self.sim.event())
        self.instances.append(inst)
        return inst

    def close(self, inst: SpotInstance) -> None:
        """Customer-initiated termination."""
        if inst.state is SpotState.RUNNING:
            inst.state = SpotState.CLOSED
            inst.ended_at = self.sim.now
            self.cloud.terminate(inst.vm)

    # -- reclamation -----------------------------------------------------

    def _on_price_change(self, price: float) -> None:
        for inst in list(self.instances):
            if inst.alive and price > inst.bid:
                self.sim.process(self._reclaim(inst),
                                 name=f"reclaim-{inst.vm.name}")

    def _reclaim(self, inst: SpotInstance):
        # Grace window (the provider's reclamation warning): the paper's
        # migratable spot instance escapes during it.
        deadline = self.sim.now + self.reclaim_grace
        rescued = False
        if self.reclaim_handler is not None:
            rescued = yield self.reclaim_handler(inst)
        remaining = deadline - self.sim.now
        if remaining > 0:
            yield self.sim.timeout(remaining)
        if not inst.alive:
            return  # closed during the grace window
        # Re-check: the price may have dropped back during the grace.
        if not rescued and self.current_price <= inst.bid:
            return
        inst.ended_at = self.sim.now
        if rescued:
            inst.state = SpotState.RESCUED
            # The VM left this cloud alive; just stop billing it here.
            if inst.vm in self.cloud.instances:
                self.cloud.release(inst.vm)
            inst.reclaim_event.succeed("rescued")
        else:
            inst.state = SpotState.RECLAIMED
            self.cloud.terminate(inst.vm)
            inst.reclaim_event.succeed("reclaimed")
