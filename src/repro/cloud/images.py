"""VM images and per-cloud image repositories."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..hypervisor.disk import BLOCK_SIZE, DiskImage


class ImageError(Exception):
    """Unknown image, duplicate registration, ..."""


class VMImage:
    """An image template stored in a cloud's repository.

    Holds the master :class:`DiskImage` plus the metadata the
    provisioning path needs (which OS content pool it derives from, how
    much RAM its instances get by default).
    """

    def __init__(self, name: str, disk: DiskImage, os_pool: str = "debian-base",
                 default_memory_pages: int = 65536):
        self.name = name
        self.disk = disk
        self.os_pool = os_pool
        self.default_memory_pages = default_memory_pages

    @property
    def size_bytes(self) -> int:
        return self.disk.size_bytes

    def __repr__(self):
        return f"<VMImage {self.name!r} {self.size_bytes / 2**30:.2f} GiB>"


class ImageRepository:
    """The image store of one cloud (one per site)."""

    def __init__(self, site: str):
        self.site = site
        self._images: Dict[str, VMImage] = {}

    def register(self, image: VMImage) -> VMImage:
        if image.name in self._images:
            raise ImageError(f"image {image.name!r} already registered")
        self._images[image.name] = image
        return image

    def get(self, name: str) -> VMImage:
        try:
            return self._images[name]
        except KeyError:
            raise ImageError(f"no image {name!r} at {self.site!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def names(self):
        return list(self._images)


def make_image(name: str, rng: np.random.Generator,
               n_blocks: int = 262144, os_pool: str = "debian-base",
               shared_fraction: float = 0.75,
               default_memory_pages: int = 65536) -> VMImage:
    """Convenience: build an image with realistic content redundancy
    (defaults: a 1 GiB disk, 256 MiB instances)."""
    from ..workloads.memory_profiles import generate_disk_fingerprints

    fps = generate_disk_fingerprints(rng, n_blocks, os_pool=os_pool,
                                     shared_fraction=shared_fraction)
    disk = DiskImage(f"{name}-master", n_blocks, BLOCK_SIZE, fingerprints=fps)
    return VMImage(name, disk, os_pool=os_pool,
                   default_memory_pages=default_memory_pages)
