"""The contextualization broker (Nimbus "one-click virtual clusters").

After instances boot they hold identical images; contextualization is
what turns them into a *cluster*: each VM reports to a broker, receives
the cluster roster and its role (e.g. ``hadoop-master`` /
``hadoop-worker``), and runs its role scripts.  The paper relies on this
to deploy virtual clusters across clouds "without manual intervention".

Modeled costs: one small control exchange per VM with the broker's site
(real network flows, so cross-cloud contextualization pays WAN latency)
plus a per-role script time; the broker releases the cluster when *all*
members have checked in (barrier), matching Nimbus semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hypervisor.vm import VirtualMachine
from ..network.flows import FlowScheduler
from ..network.transport import Transport
from ..obs.trace import tracer_of
from ..simkernel import Process, Simulator

#: Bytes of the context exchange (template + roster + keys).
CONTEXT_MESSAGE_BYTES = 64 * 1024


@dataclass
class ContextualizationResult:
    """Timing of one cluster contextualization."""

    cluster_size: int
    started_at: float
    all_joined_at: float
    completed_at: float
    roles: Dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


class ContextBroker:
    """Coordinates cluster membership and role assignment."""

    def __init__(self, sim: Simulator, scheduler: FlowScheduler,
                 site: str, role_script_time: float = 2.0):
        self.sim = sim
        self.transport = Transport.of(scheduler)
        self.scheduler = self.transport.scheduler
        #: Site hosting the broker service.
        self.site = site
        #: Time each VM spends executing its role scripts.
        self.role_script_time = role_script_time

    def contextualize(self, vms: Sequence[VirtualMachine],
                      roles: Optional[Dict[str, str]] = None,
                      span=None) -> Process:
        """Contextualize ``vms`` into one cluster.

        ``roles`` maps VM name to role; unnamed VMs get ``"worker"``.
        ``span`` optionally parents the contextualization's trace span.
        Yield the process for a :class:`ContextualizationResult`.
        """
        if not vms:
            raise ValueError("cannot contextualize an empty cluster")
        roles = dict(roles or {})
        for vm in vms:
            roles.setdefault(vm.name, "worker")
        return self.sim.process(self._run(list(vms), roles, span),
                                name="contextualize")

    def _run(self, vms: List[VirtualMachine], roles: Dict[str, str],
             parent_span=None):
        started = self.sim.now
        tracer = tracer_of(self.sim)
        cspan = tracer.start("contextualize", parent=parent_span,
                             track="contextualize", vms=len(vms))
        # Each VM exchanges its context with the broker (both ways).
        joins = [
            self.sim.process(self._join(vm, cspan), name=f"ctx-{vm.name}")
            for vm in vms
        ]
        yield self.sim.all_of(joins)
        all_joined = self.sim.now
        cspan.event("barrier-passed")
        # Barrier passed: every VM runs its role scripts in parallel.
        rspan = tracer.start("role-scripts", parent=cspan)
        yield self.sim.timeout(self.role_script_time)
        rspan.end()
        cspan.end()
        return ContextualizationResult(
            cluster_size=len(vms),
            started_at=started,
            all_joined_at=all_joined,
            completed_at=self.sim.now,
            roles=roles,
        )

    def _join(self, vm: VirtualMachine, span=None):
        jspan = tracer_of(self.sim).start(f"ctx-join:{vm.name}",
                                          parent=span, vm=vm.name)
        # Report in, then receive roster + credentials.
        up = self.transport.control(
            vm.site, self.site, CONTEXT_MESSAGE_BYTES,
            tag="context", src_vm=vm.name, span=jspan,
        )
        yield up.done
        down = self.transport.control(
            self.site, vm.site, CONTEXT_MESSAGE_BYTES,
            tag="context", dst_vm=vm.name, span=jspan,
        )
        yield down.done
        jspan.end()
