"""The IaaS cloud provider (the Nimbus toolkit stand-in).

One :class:`Cloud` manages one site: a pool of physical hosts, an image
repository, an image-propagation strategy, plain-IP addressing, quotas
and billing.  Its API mirrors what the paper uses Nimbus for: *"a common
interface across all distributed clouds, allowing the same customized
execution environment to be run everywhere"* — every cloud exposes the
same :meth:`run_instances` / :meth:`terminate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..hypervisor.disk import CowDisk
from ..hypervisor.host import PhysicalHost
from ..hypervisor.memory import MemoryImage
from ..hypervisor.vm import VirtualMachine
from ..network.flows import FlowScheduler
from ..network.transport import Transport
from ..network.nat import AddressPool
from ..network.topology import Site
from ..simkernel import Process, Simulator
from .contextualization import ContextBroker
from .images import ImageRepository, VMImage
from .pricing import InstancePricing, UsageMeter
from .propagation import (
    CowPropagation,
    HostImageCache,
    _PropagationBase,
)


class CloudError(Exception):
    """Provisioning failure (quota, capacity, unknown image...)."""


class QuotaExceeded(CloudError):
    """The request would exceed the per-customer instance quota."""


@dataclass
class InstanceSpec:
    """Shape of a requested instance."""

    vcpus: int = 1
    memory_pages: Optional[int] = None  # default: image's default


class Cloud:
    """One IaaS cloud over one site.

    Parameters
    ----------
    sim, scheduler:
        Kernel and the shared flow network.
    site:
        The :class:`~repro.network.topology.Site` this cloud occupies.
    hosts:
        Its physical machines.
    propagation:
        Image-propagation strategy; defaults to chain+CoW (the paper's
        fast path).
    quota:
        Maximum concurrently running instances (None = unlimited).
    boot_delay:
        Guest boot time once its disk is available.
    """

    def __init__(self, sim: Simulator, scheduler: FlowScheduler, site: Site,
                 hosts: Sequence[PhysicalHost],
                 propagation: Optional[_PropagationBase] = None,
                 pricing: Optional[InstancePricing] = None,
                 quota: Optional[int] = None,
                 boot_delay: float = 10.0):
        if not hosts:
            raise ValueError("a cloud needs at least one host")
        for h in hosts:
            if h.site != site.name:
                raise ValueError(
                    f"host {h.name!r} is at {h.site!r}, not {site.name!r}"
                )
        self.sim = sim
        self.transport = Transport.of(scheduler)
        self.scheduler = self.transport.scheduler
        self.site = site
        self.hosts = list(hosts)
        #: Host names excluded from new placements (draining/cordoned).
        self.unschedulable: set = set()
        self.cache = HostImageCache()
        self.repository = ImageRepository(site.name)
        self.propagation = propagation or CowPropagation(
            sim, self.transport, self.cache
        )
        self.pricing = pricing or InstancePricing()
        self.meter = UsageMeter(self.pricing)
        self.quota = quota
        self.boot_delay = boot_delay
        self.address_pool = AddressPool(site.name)
        self.context_broker = ContextBroker(sim, self.transport, site.name)
        self.instances: List[VirtualMachine] = []
        #: Clouds whose hypervisors may open migration channels here
        #: (credential exchange established out of band; the federation
        #: sets mutual trust among its members).
        self.trusted_peers: set = set()
        self._counter = 0

    def trust(self, peer_name: str) -> None:
        """Accept inbound migrations from ``peer_name``."""
        self.trusted_peers.add(peer_name)

    def revoke_trust(self, peer_name: str) -> None:
        """Stop accepting inbound migrations from ``peer_name``."""
        self.trusted_peers.discard(peer_name)

    def cordon(self, host_name: str) -> None:
        """Exclude a host from new placements (it keeps running what it
        already hosts); used while the health monitor drains it."""
        if host_name not in {h.name for h in self.hosts}:
            raise CloudError(f"{self.name!r} has no host {host_name!r}")
        self.unschedulable.add(host_name)

    def uncordon(self, host_name: str) -> None:
        """Make a host eligible for new placements again."""
        self.unschedulable.discard(host_name)

    def _schedulable_hosts(self) -> List[PhysicalHost]:
        if not self.unschedulable:
            return self.hosts
        return [h for h in self.hosts if h.name not in self.unschedulable]

    # -- queries ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.site.name

    def capacity(self, spec: InstanceSpec = InstanceSpec()) -> int:
        """How many instances of ``spec`` fit right now."""
        pages = spec.memory_pages or 65536
        ram = pages * 4096
        total = 0
        for h in self._schedulable_hosts():
            total += min(h.free_cores // spec.vcpus,
                         int(h.free_ram // ram)) if spec.vcpus else 0
        if self.quota is not None:
            total = min(total, self.quota - len(self.instances))
        return max(0, total)

    # -- provisioning ------------------------------------------------------

    def run_instances(self, image_name: str, count: int,
                      spec: InstanceSpec = InstanceSpec(),
                      memory_factory: Optional[Callable[[str], MemoryImage]]
                      = None,
                      name_prefix: Optional[str] = None) -> Process:
        """Launch ``count`` instances of ``image_name``.

        Yield the returned process for the list of booted
        :class:`VirtualMachine` objects.  ``memory_factory(vm_name)``
        lets callers install workload-specific memory contents.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        image = self.repository.get(image_name)
        if self.quota is not None and len(self.instances) + count > self.quota:
            raise QuotaExceeded(
                f"quota {self.quota} would be exceeded by +{count}"
            )
        return self.sim.process(
            self._provision(image, count, spec, memory_factory, name_prefix),
            name=f"provision-{self.name}",
        )

    def _pick_hosts(self, count: int, spec: InstanceSpec,
                    pages: int) -> List[PhysicalHost]:
        """First-fit-decreasing placement over current headroom."""
        ram = pages * 4096
        candidates = self._schedulable_hosts()
        chosen: List[PhysicalHost] = []
        headroom = {
            h.name: [h.free_cores, h.free_ram] for h in candidates
        }
        for _ in range(count):
            placed = False
            for h in sorted(candidates,
                            key=lambda h: headroom[h.name][0], reverse=True):
                cores, free_ram = headroom[h.name]
                if cores >= spec.vcpus and free_ram >= ram:
                    chosen.append(h)
                    headroom[h.name][0] -= spec.vcpus
                    headroom[h.name][1] -= ram
                    placed = True
                    break
            if not placed:
                raise CloudError(
                    f"{self.name!r}: insufficient capacity for {count} "
                    f"x {spec.vcpus} vCPU instances"
                )
        return chosen

    def _provision(self, image: VMImage, count: int, spec: InstanceSpec,
                   memory_factory, name_prefix):
        pages = spec.memory_pages or image.default_memory_pages
        hosts = self._pick_hosts(count, spec, pages)

        # Reserve the capacity *before* the propagation wait: hosts are
        # claimed synchronously so concurrent provisioning batches never
        # double-book a host they both saw as free.
        vms: List[VirtualMachine] = []
        prefix = name_prefix or f"{self.name}-{image.name}"
        try:
            for host in hosts:
                self._counter += 1
                vm_name = f"{prefix}-{self._counter}"
                memory = (memory_factory(vm_name) if memory_factory
                          else MemoryImage(pages))
                if memory.n_pages != pages:
                    raise CloudError(
                        f"memory_factory produced {memory.n_pages} pages, "
                        f"spec asks for {pages}"
                    )
                disk = CowDisk(f"{vm_name}-disk", image.disk)
                vm = VirtualMachine(self.sim, vm_name, memory, disk=disk,
                                    vcpus=spec.vcpus)
                host.place(vm)
                vm.address = self.address_pool.allocate(vm_name)
                vms.append(vm)

            # Propagate the image to the distinct hosts involved, then
            # boot the guests in parallel.
            distinct = list({h.name: h for h in hosts}.values())
            yield self.propagation.deploy(image, distinct)
            yield self.sim.timeout(self.boot_delay)
        except BaseException:
            # Return every reservation of the failed batch (atomicity:
            # a partial batch never holds capacity or addresses).
            for vm in vms:
                if vm.host is not None:
                    vm.host.evict(vm)
                self.address_pool.release(vm.address)
                vm.stop()
            raise

        for vm in vms:
            vm.boot()
            self.instances.append(vm)
            self.meter.start(vm.name, self.sim.now)
        return vms

    def terminate(self, vm: VirtualMachine) -> float:
        """Stop and release an instance; returns its billed cost."""
        if vm not in self.instances:
            raise CloudError(f"{vm.name!r} is not an instance of {self.name!r}")
        self.instances.remove(vm)
        cost = self.meter.stop(vm.name, self.sim.now)
        if vm.host is not None:
            vm.host.evict(vm)
        vm.stop()
        return cost

    def adopt(self, vm: VirtualMachine, hourly_rate: Optional[float] = None
              ) -> None:
        """Take over billing/tracking of a VM that migrated *into* this
        cloud (cloud-API-level migration, paper §IV)."""
        if vm in self.instances:
            raise CloudError(f"{vm.name!r} is already tracked here")
        self.instances.append(vm)
        self.meter.start(vm.name, self.sim.now, hourly_rate)

    def release(self, vm: VirtualMachine) -> float:
        """Stop tracking a VM that migrated *out* (it keeps running)."""
        if vm not in self.instances:
            raise CloudError(f"{vm.name!r} is not an instance of {self.name!r}")
        self.instances.remove(vm)
        return self.meter.stop(vm.name, self.sim.now)

    def compute_cost(self) -> float:
        """Total compute bill up to now."""
        return self.meter.cost(self.sim.now)

    def __repr__(self):
        return (f"<Cloud {self.name!r} hosts={len(self.hosts)} "
                f"instances={len(self.instances)}>")
