"""Adaptation policies and the closed-loop controller (paper §III-C).

The paper lists three reasons to relocate at runtime — resource
availability, resource cost, application requirements.
:class:`CostAwarePolicy` handles the cost axis: when a trigger fires, it
restricts the planner to clouds whose current price sits within a band
of the cheapest, so the communication-aware plan simultaneously
evacuates expensive clouds.  :class:`AutonomicController` closes the
loop: triggers from the :class:`~repro.autonomic.monitor.TriggerBus`
drive fresh adaptations of a watched cluster using the latest detected
traffic matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..patterns.matrix import TrafficMatrix
from ..sky.federation import Federation
from .engine import AdaptationEngine
from .monitor import AdaptationTrigger, TriggerBus


class CostAwarePolicy:
    """Restrict placement to clouds priced within ``band`` of the best.

    ``price_of`` maps a cloud to its *current* effective price; by
    default the on-demand card price, but a spot market's live price
    can be plugged in.
    """

    def __init__(self, band: float = 0.25,
                 price_of: Optional[Callable] = None):
        if band < 0:
            raise ValueError("band must be >= 0")
        self.band = band
        self.price_of = price_of or (
            lambda cloud: cloud.pricing.on_demand_hourly
        )

    def eligible_capacities(self, federation: Federation,
                            cluster_size: int) -> Dict[str, int]:
        """Capacity map for the planner, excluding over-priced clouds.

        Falls back to every cloud when the affordable ones cannot hold
        the cluster (availability beats cost).
        """
        prices = {name: self.price_of(cloud)
                  for name, cloud in federation.clouds.items()}
        cutoff = min(prices.values()) * (1.0 + self.band)
        caps: Dict[str, int] = {}
        for name, cloud in federation.clouds.items():
            if prices[name] <= cutoff:
                caps[name] = cloud.capacity() + len(cloud.instances)
        if sum(caps.values()) < cluster_size:
            for name, cloud in federation.clouds.items():
                caps.setdefault(
                    name, cloud.capacity() + len(cloud.instances))
        return caps


class AutonomicController:
    """Closes the monitoring -> planning -> migration loop.

    Watches one set of VMs; every trigger from the bus re-plans with the
    current traffic matrix (supplied by ``matrix_provider``, typically a
    live sniffer's matrix) and executes the relocations.  Price triggers
    evacuate over-priced clouds via :class:`CostAwarePolicy` (forced
    even if the communication cut does not improve).
    """

    def __init__(self, engine: AdaptationEngine, bus: TriggerBus,
                 vms: Sequence, matrix_provider: Callable[[], TrafficMatrix],
                 cost_policy: Optional[CostAwarePolicy] = None,
                 cooldown: float = 300.0):
        self.engine = engine
        self.bus = bus
        self.vms = list(vms)
        self.matrix_provider = matrix_provider
        self.cost_policy = cost_policy or CostAwarePolicy()
        #: Minimum spacing between adaptations (migration storms hurt).
        self.cooldown = cooldown
        self._last_adaptation = -float("inf")
        self.adaptations: List = []
        bus.subscribe(self._on_trigger)

    def _on_trigger(self, trigger: AdaptationTrigger) -> None:
        sim = self.engine.federation.sim
        if sim.now - self._last_adaptation < self.cooldown:
            return
        self._last_adaptation = sim.now
        matrix = self.matrix_provider()
        capacities = None
        force = False
        if trigger.kind == "price":
            capacities = self.cost_policy.eligible_capacities(
                self.engine.federation, len(self.vms))
            force = True
        proc = self.engine.adapt(self.vms, matrix, trigger=trigger,
                                 capacities=capacities, force=force)
        self.adaptations.append(proc)
