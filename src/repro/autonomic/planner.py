"""Communication-aware placement planning (paper §III-C).

Relocating *subsets* of a virtual cluster "needs to take into account
communication patterns to limit communications crossing cloud
boundaries" — both for latency and because inter-cloud traffic is
billed.  The planner turns a detected
:class:`~repro.patterns.matrix.TrafficMatrix` into a VM→cloud assignment
that minimizes cross-cloud volume, under per-cloud capacity limits.

Algorithm: weighted graph partitioning — Kernighan–Lin bisection
(:mod:`networkx`) for two clouds, applied recursively for more — plus a
refinement pass that greedily moves VMs while it reduces the cut and
respects capacity.  Baselines (`random_assignment`,
`round_robin_assignment`) quantify the benefit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..patterns.matrix import TrafficMatrix

#: VM name -> cloud name.
Assignment = Dict[str, str]


class PlanningError(Exception):
    """The requested placement is infeasible."""


def cross_traffic(assignment: Assignment, matrix: TrafficMatrix) -> float:
    """Bytes crossing cloud boundaries under ``assignment``."""
    total = 0.0
    for (src, dst), volume in matrix.pairs().items():
        if assignment.get(src) != assignment.get(dst):
            total += volume
    return total


def random_assignment(vms: Sequence[str], clouds: Dict[str, int],
                      rng: np.random.Generator) -> Assignment:
    """Capacity-respecting uniform-random baseline."""
    slots: List[str] = []
    for cloud, cap in clouds.items():
        slots.extend([cloud] * cap)
    if len(slots) < len(vms):
        raise PlanningError("not enough capacity for all VMs")
    picked = rng.choice(len(slots), size=len(vms), replace=False)
    return {vm: slots[i] for vm, i in zip(vms, picked)}


def round_robin_assignment(vms: Sequence[str],
                           clouds: Dict[str, int]) -> Assignment:
    """Deal VMs over clouds in turn (the locality-blind default)."""
    if sum(clouds.values()) < len(vms):
        raise PlanningError("not enough capacity for all VMs")
    names = list(clouds)
    remaining = dict(clouds)
    out: Assignment = {}
    i = 0
    for vm in vms:
        for _ in range(len(names) + 1):
            cloud = names[i % len(names)]
            i += 1
            if remaining[cloud] > 0:
                remaining[cloud] -= 1
                out[vm] = cloud
                break
        else:  # pragma: no cover - guarded by capacity check
            raise PlanningError("allocation failed")
    return out


class CommunicationAwarePlanner:
    """Minimize cross-cloud traffic via recursive graph bisection."""

    def __init__(self, seed: int = 0, refine_passes: Optional[int] = None):
        self.seed = seed
        #: Max greedy-refinement sweeps; None = run to convergence
        #: (bounded by problem size), which guarantees no single-VM move
        #: can improve the final cut.
        self.refine_passes = refine_passes

    # -- public ----------------------------------------------------------

    def plan(self, vms: Sequence[str], matrix: TrafficMatrix,
             clouds: Dict[str, int]) -> Assignment:
        """Assign ``vms`` to ``clouds`` (name -> capacity)."""
        vms = list(vms)
        if sum(clouds.values()) < len(vms):
            raise PlanningError("not enough capacity for all VMs")
        if len(clouds) == 1:
            only = next(iter(clouds))
            return {vm: only for vm in vms}
        graph = self._build_graph(vms, matrix)
        assignment = self._partition(graph, vms, dict(clouds))
        passes = (self.refine_passes if self.refine_passes is not None
                  else max(10, 2 * len(vms)))
        for _ in range(passes):
            if not self._refine(assignment, matrix, dict(clouds)):
                break
        return assignment

    # -- internals ------------------------------------------------------

    @staticmethod
    def _build_graph(vms: Sequence[str], matrix: TrafficMatrix) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(vms)
        for (src, dst), volume in matrix.symmetrized().pairs().items():
            if src in g and dst in g:
                g.add_edge(src, dst, weight=volume)
        return g

    def _partition(self, graph: nx.Graph, vms: List[str],
                   clouds: Dict[str, int]) -> Assignment:
        """Recursive capacity-aware bisection."""
        names = sorted(clouds, key=clouds.get, reverse=True)
        if len(names) == 1:
            return {vm: names[0] for vm in vms}
        # Split the cloud set into two halves by capacity.
        left_names, right_names = [], []
        left_cap = right_cap = 0
        for name in names:
            if left_cap <= right_cap:
                left_names.append(name)
                left_cap += clouds[name]
            else:
                right_names.append(name)
                right_cap += clouds[name]
        sub = graph.subgraph(vms)
        left_set, right_set = self._bisect(sub, vms, left_cap, right_cap)
        out: Assignment = {}
        out.update(self._partition(graph, sorted(left_set),
                                   {n: clouds[n] for n in left_names}))
        out.update(self._partition(graph, sorted(right_set),
                                   {n: clouds[n] for n in right_names}))
        return out

    def _bisect(self, graph: nx.Graph, vms: List[str], left_cap: int,
                right_cap: int):
        """KL bisection, then enforce the capacity split sizes."""
        n = len(vms)
        target_left = min(left_cap, max(0, n - right_cap),
                          max(n // 2, n - right_cap))
        target_left = min(max(target_left, n - right_cap), left_cap, n)
        if n <= 1 or graph.number_of_edges() == 0:
            return set(vms[:target_left]), set(vms[target_left:])
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            graph, seed=self.seed, weight="weight"
        )
        left, right = set(left), set(right)
        # Rebalance to capacities: move the least-attached nodes.
        def attachment(node, group):
            return sum(
                graph.edges[node, nb]["weight"]
                for nb in graph.neighbors(node) if nb in group
            )
        while len(left) > left_cap:
            mover = min(left, key=lambda v: attachment(v, left))
            left.discard(mover)
            right.add(mover)
        while len(right) > right_cap:
            mover = min(right, key=lambda v: attachment(v, right))
            right.discard(mover)
            left.add(mover)
        return left, right

    def _refine(self, assignment: Assignment, matrix: TrafficMatrix,
                clouds: Dict[str, int]) -> bool:
        """Greedy single-VM moves that lower the cut within capacity."""
        sym = matrix.symmetrized()
        used: Dict[str, int] = {name: 0 for name in clouds}
        for cloud in assignment.values():
            used[cloud] += 1
        improved = False
        for vm in sorted(assignment):
            current = assignment[vm]
            # Volume this VM exchanges with each cloud.
            volume_to: Dict[str, float] = {name: 0.0 for name in clouds}
            for (a, b), v in sym.pairs().items():
                if a == vm and b in assignment:
                    volume_to[assignment[b]] += v
                elif b == vm and a in assignment:
                    volume_to[assignment[a]] += v
            best = max(
                (name for name in clouds
                 if name == current or used[name] < clouds[name]),
                key=lambda name: volume_to[name],
            )
            if best != current and volume_to[best] > volume_to[current]:
                assignment[vm] = best
                used[current] -= 1
                used[best] += 1
                improved = True
        return improved
