"""The autonomic adaptation engine.

Closes the loop the paper's building blocks open: traffic matrices from
the detection framework feed the communication-aware planner; the
resulting placement is executed with inter-cloud live migrations through
the sky migration service (Shrinker + ViNe reconfiguration under the
hood); triggers from the monitors decide *when* to re-plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hypervisor.vm import VirtualMachine
from ..patterns.matrix import TrafficMatrix
from ..simkernel import Process
from ..sky.federation import Federation
from ..sky.migration_api import SkyMigrationService
from .monitor import AdaptationTrigger, TriggerBus
from .planner import Assignment, CommunicationAwarePlanner, cross_traffic


@dataclass
class AdaptationAction:
    """One executed relocation."""

    vm_name: str
    from_cloud: str
    to_cloud: str
    started_at: float
    finished_at: float
    wire_bytes: float


@dataclass
class AdaptationReport:
    """Outcome of one adaptation round."""

    trigger: Optional[AdaptationTrigger]
    planned: Assignment
    actions: List[AdaptationAction] = field(default_factory=list)
    cut_before: float = 0.0
    cut_after: float = 0.0

    @property
    def migrations(self) -> int:
        return len(self.actions)


class AdaptationEngine:
    """Plans and executes communication-aware relocations."""

    def __init__(self, federation: Federation,
                 planner: Optional[CommunicationAwarePlanner] = None,
                 migration_service: Optional[SkyMigrationService] = None,
                 min_improvement: float = 0.10):
        self.federation = federation
        self.planner = planner or CommunicationAwarePlanner()
        self.service = migration_service or SkyMigrationService(federation)
        #: Skip execution unless the cut shrinks by at least this factor.
        self.min_improvement = min_improvement
        self.reports: List[AdaptationReport] = []
        self.bus = TriggerBus()

    # -- planning ---------------------------------------------------------

    def current_assignment(self, vms: Sequence[VirtualMachine]) -> Assignment:
        return {vm.name: vm.site for vm in vms}

    def cloud_capacities(self, extra_headroom: int = 0) -> Dict[str, int]:
        """Capacity per cloud, counting currently-used slots as available
        to the plan (VMs may swap places)."""
        caps: Dict[str, int] = {}
        for name, cloud in self.federation.clouds.items():
            caps[name] = cloud.capacity() + len(cloud.instances) + extra_headroom
        return caps

    def plan(self, vms: Sequence[VirtualMachine],
             matrix: TrafficMatrix,
             capacities: Optional[Dict[str, int]] = None
             ) -> AdaptationReport:
        """Compute (but do not execute) a relocation plan.

        ``capacities`` restricts the clouds considered (e.g. a
        cost-aware policy excluding clouds whose price spiked); default
        is every member cloud at full headroom.
        """
        current = self.current_assignment(vms)
        if capacities is None:
            capacities = self.cloud_capacities()
        planned = self.planner.plan([vm.name for vm in vms], matrix,
                                    capacities)
        report = AdaptationReport(
            trigger=None,
            planned=planned,
            cut_before=cross_traffic(current, matrix),
            cut_after=cross_traffic(planned, matrix),
        )
        return report

    # -- execution ------------------------------------------------------

    def adapt(self, vms: Sequence[VirtualMachine], matrix: TrafficMatrix,
              trigger: Optional[AdaptationTrigger] = None,
              capacities: Optional[Dict[str, int]] = None,
              force: bool = False) -> Process:
        """Plan and, if worthwhile, execute the relocations.

        Yields the :class:`AdaptationReport`.  Migrations run
        sequentially (each through authentication, Shrinker transfer and
        overlay reconfiguration) to bound WAN pressure.  ``force``
        executes the plan even when the communication cut does not
        improve (e.g. evacuating a cloud whose price spiked).
        """
        return self.federation.sim.process(
            self._adapt(list(vms), matrix, trigger, capacities, force),
            name="adaptation",
        )

    def _adapt(self, vms: List[VirtualMachine], matrix: TrafficMatrix,
               trigger: Optional[AdaptationTrigger],
               capacities: Optional[Dict[str, int]] = None,
               force: bool = False):
        sim = self.federation.sim
        report = self.plan(vms, matrix, capacities)
        report.trigger = trigger
        self.reports.append(report)
        if not force and report.cut_before > 0:
            improvement = 1.0 - report.cut_after / report.cut_before
            if improvement < self.min_improvement:
                return report  # not worth the migration traffic
        by_name = {vm.name: vm for vm in vms}
        for vm_name, target_cloud in sorted(report.planned.items()):
            vm = by_name[vm_name]
            if vm.site == target_cloud:
                continue
            from_cloud = vm.site
            started = sim.now
            result = yield self.service.migrate_vm(vm, target_cloud)
            report.actions.append(AdaptationAction(
                vm_name=vm_name,
                from_cloud=from_cloud,
                to_cloud=target_cloud,
                started_at=started,
                finished_at=sim.now,
                wire_bytes=result.stats.wire_bytes
                + result.stats.disk_wire_bytes,
            ))
        return report
