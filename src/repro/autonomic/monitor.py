"""Monitors producing adaptation triggers (paper §III-C's three causes).

The paper lists the reasons to relocate VMs at runtime:

1. changes in **resource availability** (a faster cloud frees up, the
   private cloud regains capacity);
2. changes in **resource cost** (dynamic prices, spot markets);
3. changes in **application requirements** (deadlines move).

Each monitor watches one of these and emits :class:`AdaptationTrigger`
records that the :class:`~repro.autonomic.engine.AdaptationEngine`
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..simkernel import Simulator


@dataclass
class AdaptationTrigger:
    """One reason to re-plan, with its context."""

    kind: str  #: "price" | "availability" | "deadline"
    time: float
    detail: dict = field(default_factory=dict)


class TriggerBus:
    """Collects triggers and notifies listeners."""

    def __init__(self):
        self.triggers: List[AdaptationTrigger] = []
        self._listeners: List[Callable[[AdaptationTrigger], None]] = []

    def subscribe(self, listener: Callable[[AdaptationTrigger], None]) -> None:
        self._listeners.append(listener)

    def emit(self, trigger: AdaptationTrigger) -> None:
        self.triggers.append(trigger)
        for listener in list(self._listeners):
            listener(trigger)


class PriceMonitor:
    """Fires when a cloud's spot price moves more than ``threshold``
    (relative) from the last fired level."""

    def __init__(self, bus: TriggerBus, sim: Simulator, cloud_name: str,
                 price_process, threshold: float = 0.25):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.bus = bus
        self.sim = sim
        self.cloud_name = cloud_name
        self.threshold = threshold
        self._reference = price_process.current_price
        price_process.subscribe(self._on_price)

    def _on_price(self, price: float) -> None:
        if self._reference <= 0:
            self._reference = price
            return
        change = abs(price - self._reference) / self._reference
        if change >= self.threshold:
            self.bus.emit(AdaptationTrigger(
                "price", self.sim.now,
                {"cloud": self.cloud_name, "price": price,
                 "reference": self._reference},
            ))
            self._reference = price


class AvailabilityMonitor:
    """Polls cloud free capacity; fires when it shifts materially."""

    def __init__(self, bus: TriggerBus, sim: Simulator, clouds,
                 interval: float = 300.0, threshold: int = 4):
        self.bus = bus
        self.sim = sim
        self.clouds = list(clouds)
        self.interval = interval
        self.threshold = threshold
        self._last = {c.name: c.capacity() for c in self.clouds}
        self.process = sim.process(self._run(), name="availability-monitor")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval)
            for cloud in self.clouds:
                cap = cloud.capacity()
                if abs(cap - self._last[cloud.name]) >= self.threshold:
                    self.bus.emit(AdaptationTrigger(
                        "availability", self.sim.now,
                        {"cloud": cloud.name, "capacity": cap,
                         "previous": self._last[cloud.name]},
                    ))
                    self._last[cloud.name] = cap


class SLOMonitor:
    """Bridges :class:`~repro.obs.slo.SLOEngine` alerts onto the
    trigger bus — the paper's observe-then-act loop closed over SLOs.

    A fourth adaptation cause alongside price/availability/deadline:
    a *firing* service-level objective (rescue rate collapsing, queue
    wait blowing past target) is itself a reason to re-plan.  Only the
    states in ``states`` are forwarded; "pending" is excluded by
    default so the planner is not churned by blips that never fire.
    """

    def __init__(self, bus: TriggerBus, engine,
                 states=("firing", "resolved")):
        self.bus = bus
        self.states = tuple(states)
        engine.subscribe(self._on_alert)

    def _on_alert(self, alert) -> None:
        if alert.state not in self.states:
            return
        at = {"pending": alert.pending_at, "firing": alert.fired_at,
              "resolved": alert.resolved_at}.get(alert.state)
        self.bus.emit(AdaptationTrigger(
            "slo", at if at is not None else alert.pending_at,
            {"objective": alert.objective.name, "state": alert.state,
             "value": alert.value},
        ))


class DeadlineMonitor:
    """Fires when an application's deadline changes."""

    def __init__(self, bus: TriggerBus, sim: Simulator):
        self.bus = bus
        self.sim = sim
        self.deadline: Optional[float] = None

    def set_deadline(self, deadline: float) -> None:
        previous = self.deadline
        self.deadline = deadline
        if previous is not None and previous != deadline:
            self.bus.emit(AdaptationTrigger(
                "deadline", self.sim.now,
                {"deadline": deadline, "previous": previous},
            ))
