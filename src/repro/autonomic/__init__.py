"""Autonomic adaptation of distributed applications in cloud federations
(paper §III-C): monitors -> communication-aware planner -> live
relocation through the sky migration service.
"""

from .engine import AdaptationAction, AdaptationEngine, AdaptationReport
from .monitor import (
    AdaptationTrigger,
    AvailabilityMonitor,
    DeadlineMonitor,
    PriceMonitor,
    SLOMonitor,
    TriggerBus,
)
from .policy import AutonomicController, CostAwarePolicy
from .planner import (
    Assignment,
    CommunicationAwarePlanner,
    PlanningError,
    cross_traffic,
    random_assignment,
    round_robin_assignment,
)

__all__ = [
    "AdaptationAction",
    "AdaptationEngine",
    "AdaptationReport",
    "AdaptationTrigger",
    "Assignment",
    "AutonomicController",
    "AvailabilityMonitor",
    "CostAwarePolicy",
    "CommunicationAwarePlanner",
    "DeadlineMonitor",
    "PlanningError",
    "PriceMonitor",
    "SLOMonitor",
    "TriggerBus",
    "cross_traffic",
    "random_assignment",
    "round_robin_assignment",
]
