"""Addressing, NAT and plain-IP reachability.

Every network endpoint (a VM) carries an :class:`Address` of the network
it currently lives in.  Under plain IP, the address is tied to the site's
network — so a VM migrated to another site *must* change address, which
is precisely why classic live migration cannot cross LAN boundaries
(paper §III, reason 1).  The ViNe overlay assigns location-independent
overlay addresses instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from .topology import Topology


@dataclass(frozen=True)
class Address:
    """A network address: (network id, host id).

    For plain IP the network id is the site name; for ViNe it is the
    overlay network id.
    """

    network: str
    host: int

    def __str__(self):
        return f"{self.network}/{self.host}"


class Endpoint(Protocol):
    """What the connection layer needs from a communication endpoint."""

    name: str

    @property
    def site(self) -> str:
        """Name of the site where the endpoint currently runs."""
        ...  # pragma: no cover

    @property
    def address(self) -> Address:
        """The endpoint's current address."""
        ...  # pragma: no cover


class AddressPool:
    """Allocates host ids within one network, never reusing them."""

    def __init__(self, network: str):
        self.network = network
        self._next = 1
        self._allocated: Dict[int, str] = {}

    def allocate(self, owner: str = "") -> Address:
        """Hand out the next free address in this network."""
        host = self._next
        self._next += 1
        self._allocated[host] = owner
        return Address(self.network, host)

    def release(self, address: Address) -> None:
        """Return an address to the pool (id is retired, not reused)."""
        if address.network != self.network:
            raise ValueError(f"{address} does not belong to network {self.network!r}")
        self._allocated.pop(address.host, None)

    @property
    def in_use(self) -> int:
        return len(self._allocated)


class Route:
    """The outcome of resolving a connection's path at one instant."""

    __slots__ = ("src_site", "dst_site", "overhead_factor", "extra_latency",
                 "rate_cap")

    def __init__(self, src_site: str, dst_site: str,
                 overhead_factor: float = 1.0, extra_latency: float = 0.0,
                 rate_cap: Optional[float] = None):
        self.src_site = src_site
        self.dst_site = dst_site
        #: Multiplier on payload bytes (e.g. overlay encapsulation).
        self.overhead_factor = overhead_factor
        #: Additional latency (e.g. a relay through overlay routers).
        self.extra_latency = extra_latency
        #: Throughput ceiling (e.g. a user-level overlay router).
        self.rate_cap = rate_cap


class Resolver(Protocol):
    """Maps (src endpoint, dst endpoint) to a momentary route or None."""

    def resolve(self, src: Endpoint, dst: Endpoint) -> Optional[Route]:
        ...  # pragma: no cover


class PlainIPResolver:
    """Direct site-to-site routing with NAT/firewall semantics.

    A route exists only if the destination site is directly reachable
    (public addresses, open firewall) — and, crucially, only while both
    endpoints still hold the addresses they had when the connection was
    established.  Address changes are detected by the connection layer.
    """

    def __init__(self, topology: Topology):
        self.topology = topology

    def resolve(self, src: Endpoint, dst: Endpoint) -> Optional[Route]:
        if not self.topology.reachable_directly(src.site, dst.site):
            return None
        # Plain IP addresses are site-bound: an endpoint whose address
        # network no longer matches where it runs is unreachable.
        if dst.address.network != dst.site or src.address.network != src.site:
            return None
        return Route(src.site, dst.site)


def site_address_pools(topology: Topology) -> Dict[str, AddressPool]:
    """One plain-IP address pool per site of ``topology``."""
    return {name: AddressPool(name) for name in topology.sites}
