"""A TCP connection model for migration experiments.

The paper's §III identifies why live migration breaks networking: a VM
crossing a LAN boundary loses its open TCP connections because its
address must change.  This module models exactly that observable:

* A :class:`Connection` is established between two endpoints and pins
  their addresses at establishment time.
* Each :meth:`Connection.send` resolves the current route through a
  pluggable :class:`~repro.network.nat.Resolver`.  If the route is gone
  (the peer moved and nothing fixed up the network), the sender retries
  until its retransmission budget is exhausted, then the connection
  transitions to ``BROKEN`` — the "lost connection" the paper describes.
* With the ViNe resolver (see :mod:`repro.vine`), overlay addresses are
  location-independent and the overlay re-routes after a short
  reconfiguration delay, so the same send simply stalls briefly and the
  connection survives.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

from ..simkernel import Process, Simulator
from .flows import FlowScheduler
from .transport import Transport
from .nat import Endpoint, Resolver
from .topology import NetworkError


class ConnectionBroken(NetworkError):
    """The connection's retransmission budget ran out."""


class ConnectionState(Enum):
    ESTABLISHED = "established"
    BROKEN = "broken"
    CLOSED = "closed"


class Connection:
    """A bidirectional TCP connection between two endpoints.

    Parameters
    ----------
    sim, scheduler, resolver:
        Kernel, flow scheduler, and the routing function in effect
        (plain IP or an overlay).
    a, b:
        The endpoints.  Their addresses are pinned at establishment.
    rto_budget:
        Seconds of consecutive unroutability tolerated before the
        connection breaks (stands in for TCP's retransmission limit).
    retry_interval:
        Backoff between route re-resolutions while stalled.
    """

    _ids = itertools.count()

    def __init__(self, sim: Simulator, scheduler: FlowScheduler,
                 resolver: Resolver, a: Endpoint, b: Endpoint,
                 rto_budget: float = 15.0, retry_interval: float = 0.2):
        self.id = next(Connection._ids)
        self.sim = sim
        self.transport = Transport.of(scheduler)
        self.scheduler = self.transport.scheduler
        self.resolver = resolver
        self.a = a
        self.b = b
        self.addr_a = a.address
        self.addr_b = b.address
        self.rto_budget = rto_budget
        self.retry_interval = retry_interval
        self.state = ConnectionState.ESTABLISHED
        #: Total payload bytes successfully delivered (both directions).
        self.bytes_delivered = 0.0
        #: Longest stall (s) a send experienced before making progress.
        self.max_stall = 0.0
        self.established_at = sim.now

        if resolver.resolve(a, b) is None:
            self.state = ConnectionState.BROKEN
            raise ConnectionBroken(
                f"cannot establish connection {a.name} -> {b.name}: no route"
            )

    # -- helpers -------------------------------------------------------------

    def _peer_addresses_changed(self) -> bool:
        return self.a.address != self.addr_a or self.b.address != self.addr_b

    @property
    def alive(self) -> bool:
        return self.state is ConnectionState.ESTABLISHED

    def close(self) -> None:
        """Orderly shutdown."""
        if self.state is ConnectionState.ESTABLISHED:
            self.state = ConnectionState.CLOSED

    # -- data transfer ---------------------------------------------------

    def send(self, nbytes: float, sender: Optional[Endpoint] = None,
             tag: str = "tcp") -> Process:
        """Send ``nbytes`` of payload from ``sender`` (default: ``a``).

        Returns a process; yield it to wait.  It returns the number of
        bytes delivered, or raises :class:`ConnectionBroken` if the
        route stayed dead past the retransmission budget or a peer's
        address changed under plain IP.
        """
        src, dst = (self.a, self.b)
        if sender is self.b:
            src, dst = (self.b, self.a)
        return self.sim.process(self._send_proc(src, dst, nbytes, tag),
                                name=f"tcp-send-{self.id}")

    def _send_proc(self, src: Endpoint, dst: Endpoint, nbytes: float,
                   tag: str):
        if self.state is not ConnectionState.ESTABLISHED:
            raise ConnectionBroken(f"connection {self.id} is {self.state.value}")
        stall_started = None
        while True:
            # Under plain IP, an address change is immediately fatal: the
            # pinned 4-tuple no longer names the peer.
            if self._peer_addresses_changed():
                self.state = ConnectionState.BROKEN
                raise ConnectionBroken(
                    f"connection {self.id}: endpoint address changed "
                    f"({self.addr_a}->{self.a.address}, "
                    f"{self.addr_b}->{self.b.address})"
                )
            route = self.resolver.resolve(src, dst)
            if route is None:
                now = self.sim.now
                if stall_started is None:
                    stall_started = now
                if now - stall_started >= self.rto_budget:
                    self.state = ConnectionState.BROKEN
                    raise ConnectionBroken(
                        f"connection {self.id}: unroutable for "
                        f"{now - stall_started:.3f}s"
                    )
                yield self.sim.timeout(self.retry_interval)
                continue
            if stall_started is not None:
                self.max_stall = max(self.max_stall, self.sim.now - stall_started)
                stall_started = None
            wire_bytes = nbytes * route.overhead_factor
            flow = self.transport.data(
                route.src_site, route.dst_site, wire_bytes, tag=tag,
                rate_cap=route.rate_cap,
                src_vm=src.name, dst_vm=dst.name, connection=self.id,
            )
            if route.extra_latency > 0:
                yield self.sim.timeout(route.extra_latency)
            yield flow.done
            self.bytes_delivered += nbytes
            return nbytes
