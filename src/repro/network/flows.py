"""Flow-level data transfers with max-min fair bandwidth sharing.

This is the fluid traffic model standing in for the paper's real WAN and
LAN links.  Every bulk transfer (a migration round, a MapReduce shuffle,
an image propagation hop) is a :class:`Flow` routed over the
:class:`~repro.network.topology.Topology`.  Whenever a flow starts or
finishes, the scheduler recomputes the **max-min fair** allocation via
progressive filling — the textbook model of how competing TCP streams
share bottlenecks — and reschedules each flow's completion accordingly.

The scheduler runs in one of two modes:

``mode="incremental"`` (default)
    On every arrival / departure / cancellation / capacity change, only
    the **bottleneck-connected component** of affected flows (flows
    sharing a link with the changed flow, transitively) is settled and
    re-rated.  This is exact, not an approximation: flows outside the
    component share no link with it, so their water-filling levels are
    untouched by the change.  Same-timestamp changes are coalesced into
    one batched recompute scheduled at URGENT priority (it runs before
    any same-time NORMAL event, so no observer sees a stale allocation),
    and completion timers are left alone when a flow's rate is unchanged
    within :data:`EPSILON` — the armed deadline is already exact.

``mode="full"``
    The reference implementation: settle every active flow, re-run
    progressive filling over the whole network, re-arm every timer.
    Kept selectable for differential testing and benchmarking.

Per-flow rate caps (e.g. a VM NIC, or a deliberately throttled
migration) are modeled as virtual single-flow links, which integrates
them exactly into the water-filling computation.  Aggregate per-class
ceilings (:class:`SharedCap`) are virtual *shared* links crossing every
flow of a class.  Flows may carry a ``weight`` (default 1.0); rates are
assigned proportionally to weight at each fill level (weighted max-min).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..simkernel import Event, Simulator, URGENT
from .billing import BillingMeter
from .topology import DirectedLink, NetworkError, Topology

#: Numerical slack for rate / byte comparisons.
EPSILON = 1e-9


class FlowCancelled(NetworkError):
    """Raised into waiters when a flow is cancelled mid-transfer."""


class SharedCap:
    """A virtual shared link capping the *aggregate* rate of every flow
    attached to it (e.g. all transfers of one Transport class).

    Participates in progressive filling exactly like a physical link, so
    class-level ceilings compose correctly with real bottlenecks.  Note
    that flows sharing a :class:`SharedCap` form one bottleneck-connected
    component even when their paths are disjoint.
    """

    __slots__ = ("name", "bandwidth")

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)

    def __repr__(self):
        return f"<SharedCap {self.name} {self.bandwidth:.3g} B/s>"


class Flow:
    """A single in-flight bulk transfer.

    Attributes
    ----------
    done:
        Event that succeeds with the flow itself once the last byte has
        arrived (drain time plus one-way path latency), or fails with
        :class:`FlowCancelled`.
    rate:
        Current max-min fair rate (bytes/second), updated by the
        scheduler as competing flows come and go.
    weight:
        Relative share at contended links (weighted max-min); 1.0 for
        plain fair sharing.
    """

    _ids = itertools.count()

    __slots__ = (
        "id", "src", "dst", "size", "remaining", "rate", "path", "done",
        "started_at", "finished_at", "rate_cap", "tag", "meta", "weight",
        "shared_caps", "_last_settled", "_epoch", "_timer", "_armed_rate",
    )

    def __init__(self, sim: Simulator, src: str, dst: str, size: float,
                 path: List[DirectedLink], rate_cap: Optional[float],
                 tag: str, meta: dict, weight: float = 1.0,
                 shared_caps: Sequence[SharedCap] = ()):
        self.id = next(Flow._ids)
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.path = path
        self.done: Event = sim.event()
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self.rate_cap = rate_cap
        self.tag = tag
        self.meta = meta
        self.weight = weight
        self.shared_caps = tuple(shared_caps)
        self._last_settled = sim.now
        self._epoch = 0
        self._timer = None
        self._armed_rate = -1.0  # rate the live timer was armed with

    @property
    def transferred(self) -> float:
        """Bytes moved so far (settled view)."""
        return self.size - self.remaining

    def __repr__(self):
        return (f"<Flow #{self.id} {self.src}->{self.dst} "
                f"{self.size:.3g}B remaining={self.remaining:.3g}B>")


class FlowRecord:
    """Immutable summary of a completed flow, delivered to taps."""

    __slots__ = ("src", "dst", "size", "started_at", "finished_at",
                 "tag", "meta")

    def __init__(self, flow: Flow):
        self.src = flow.src
        self.dst = flow.dst
        self.size = flow.size
        self.started_at = flow.started_at
        self.finished_at = flow.finished_at
        self.tag = flow.tag
        self.meta = dict(flow.meta)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self):
        return f"<FlowRecord {self.src}->{self.dst} {self.size:.3g}B {self.tag}>"


def _flow_id(flow: Flow) -> int:
    return flow.id


class FlowScheduler:
    """Runs all flows over a topology with max-min fair sharing.

    Parameters
    ----------
    sim, topology:
        The simulation kernel and network graph.  The scheduler attaches
        itself to the topology, so :meth:`Topology.set_bandwidth` takes
        effect without a manual :meth:`rebalance`.
    billing:
        Optional :class:`BillingMeter`; inter-site bytes are accounted
        progressively, so cancelled flows are billed for what they
        actually moved.
    mode:
        ``"incremental"`` (default) re-rates only the bottleneck-connected
        component touched by each change; ``"full"`` is the reference
        allocator that recomputes the whole network on every event.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 billing: Optional[BillingMeter] = None,
                 mode: str = "incremental"):
        if mode not in ("incremental", "full"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        self.sim = sim
        self.topology = topology
        self.billing = billing
        self.mode = mode
        self._incremental = mode == "incremental"
        self._active: Set[Flow] = set()
        #: Callbacks invoked with a :class:`FlowRecord` on flow completion.
        self.taps: List[Callable[[FlowRecord], None]] = []
        # Incremental-mode state: persistent link -> active flows index,
        # plus the dirty sets feeding the next batched recompute.
        self._link_flows: Dict[object, Set[Flow]] = {}
        self._dirty_flows: Set[Flow] = set()
        self._dirty_links: Set[object] = set()
        self._batch_pending = False
        #: Allocator counters (batches run, flows re-rated, timers
        #: armed/skipped) — read by benchmarks, never reset.
        self.stats = {"batches": 0, "flows_rerated": 0,
                      "timers_armed": 0, "timers_skipped": 0}
        topology.attach(self)

    # -- public API ----------------------------------------------------------

    @property
    def active_flows(self) -> Set[Flow]:
        """The flows currently in flight (do not mutate)."""
        return self._active

    def start_flow(self, src: str, dst: str, size: float,
                   rate_cap: Optional[float] = None, tag: str = "data",
                   weight: float = 1.0,
                   shared_caps: Sequence[SharedCap] = (),
                   **meta) -> Flow:
        """Begin transferring ``size`` bytes from site ``src`` to ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-sized flows complete after the path latency alone.
        """
        if size < 0:
            raise ValueError(f"negative flow size {size}")
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        path = self.topology.path(src, dst)
        flow = Flow(self.sim, src, dst, size, path, rate_cap, tag, meta,
                    weight, shared_caps)
        latency = sum(l.latency for l in path)
        if size == 0:
            self._finish_after_latency(flow, latency)
            return flow
        self._active.add(flow)
        if self._incremental:
            self._index(flow)
            self._mark_dirty(flows=(flow,))
        else:
            self._recompute()
        return flow

    def transfer(self, src: str, dst: str, size: float, **kwargs) -> Event:
        """Convenience: start a flow and return its completion event."""
        return self.start_flow(src, dst, size, **kwargs).done

    def rebalance(self) -> None:
        """Re-run the fair-share allocation over *all* flows now.

        Kept as an escape hatch; arrivals, departures and
        :meth:`Topology.set_bandwidth` all trigger reallocation
        automatically.
        """
        self._recompute()

    def links_changed(self, links: Iterable[object]) -> None:
        """Topology notification: the capacity of ``links`` changed."""
        if self._incremental:
            affected = [l for l in links if l in self._link_flows]
            if affected:
                self._mark_dirty(links=affected)
        else:
            self._recompute()

    def cancel(self, flow: Flow) -> None:
        """Abort an in-flight flow; its waiters see :class:`FlowCancelled`."""
        if flow not in self._active:
            return
        if self._incremental:
            # Bill the cancelled flow up to this instant; its neighbours
            # keep their (still valid) rates until the batched recompute.
            self._settle((flow,))
        else:
            self._settle(self._active)
        self._active.discard(flow)
        flow._epoch += 1
        if flow._timer is not None:
            flow._timer.deschedule()
            flow._timer = None
        flow.done.fail(FlowCancelled(f"{flow!r} cancelled"))
        flow.done.defused = True  # cancellation is never a crash
        if self._incremental:
            self._unindex(flow)
            self._mark_dirty(links=self._alloc_links(flow))
        else:
            self._recompute()

    # -- incremental machinery ----------------------------------------------

    def _alloc_links(self, flow: Flow):
        """Shared allocation constraints of ``flow``: its path links plus
        any aggregate class caps (per-flow rate caps never connect flows
        and are handled inside the water-filling pass)."""
        if flow.shared_caps:
            return list(flow.path) + list(flow.shared_caps)
        return flow.path

    def _index(self, flow: Flow) -> None:
        for link in self._alloc_links(flow):
            self._link_flows.setdefault(link, set()).add(flow)

    def _unindex(self, flow: Flow) -> None:
        for link in self._alloc_links(flow):
            flows = self._link_flows.get(link)
            if flows is not None:
                flows.discard(flow)
                if not flows:
                    del self._link_flows[link]

    def _mark_dirty(self, flows: Iterable[Flow] = (),
                    links: Iterable[object] = ()) -> None:
        """Queue flows/links for the next batched recompute, scheduling
        one URGENT-priority pass at the current timestamp if none is
        pending yet (coalescing all same-time changes)."""
        self._dirty_flows.update(flows)
        self._dirty_links.update(links)
        if self._batch_pending:
            return
        self._batch_pending = True
        self.sim.call_in(0.0, self._run_batch, priority=URGENT)

    def _run_batch(self, _ev) -> None:
        self._batch_pending = False
        flows, links = self._dirty_flows, self._dirty_links
        self._dirty_flows, self._dirty_links = set(), set()
        component = self._component(flows, links)
        if not component:
            return
        self.stats["batches"] += 1
        self.stats["flows_rerated"] += len(component)
        self._settle(component)
        self._maxmin_rates(component)
        for flow in sorted(component, key=_flow_id):
            self._schedule_completion(flow)

    def _component(self, flows: Iterable[Flow] = (),
                   links: Iterable[object] = ()) -> Set[Flow]:
        """Active flows transitively sharing a link with the seeds.

        Restricting water-filling to this set is exact: by construction
        every link touched by the component carries no flow outside it.
        """
        stack = [f for f in flows if f in self._active]
        seen_links: Set[object] = set()
        for link in links:
            if link not in seen_links:
                seen_links.add(link)
                stack.extend(self._link_flows.get(link, ()))
        component: Set[Flow] = set()
        while stack:
            flow = stack.pop()
            if flow in component:
                continue
            component.add(flow)
            for link in self._alloc_links(flow):
                if link not in seen_links:
                    seen_links.add(link)
                    stack.extend(self._link_flows[link])
        return component

    # -- internals --------------------------------------------------------

    def _settle(self, flows: Iterable[Flow]) -> None:
        """Advance the given flows' byte counters to the current instant."""
        now = self.sim.now
        for flow in flows:
            dt = now - flow._last_settled
            if dt > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * dt)
                flow.remaining -= moved
                if self.billing is not None:
                    self.billing.record(flow.src, flow.dst, moved)
            flow._last_settled = now

    def _recompute(self) -> None:
        """Settle, re-run max-min fair allocation, reschedule completions."""
        self._settle(self._active)
        self._maxmin_rates(self._active)
        for flow in sorted(self._active, key=_flow_id):
            self._schedule_completion(flow)

    def _maxmin_rates(self, flows: Iterable[Flow]) -> None:
        """Weighted progressive-filling max-min fair allocation over
        ``flows`` (the whole network in full mode, one bottleneck
        component in incremental mode).

        All unfrozen flows' rates rise proportionally to their weights;
        when a link saturates, the flows crossing it freeze at the
        current fill level.  A per-flow rate cap is a virtual link
        carrying only that flow; a :class:`SharedCap` is a virtual link
        carrying every flow attached to it.
        """
        order = sorted(flows, key=_flow_id)
        if not order:
            return
        # Map each (shared or virtual) link to the flows crossing it.
        link_flows: Dict[object, Set[Flow]] = {}
        residual: Dict[object, float] = {}
        wsum: Dict[object, float] = {}
        for flow in order:
            for link in self._alloc_links(flow):
                crossing = link_flows.get(link)
                if crossing is None:
                    crossing = link_flows[link] = set()
                    residual[link] = link.bandwidth
                    wsum[link] = 0.0
                crossing.add(flow)
                wsum[link] += flow.weight
            if flow.rate_cap is not None:
                cap_key = ("cap", flow.id)
                link_flows[cap_key] = {flow}
                residual[cap_key] = flow.rate_cap
                wsum[cap_key] = flow.weight

        unassigned = set(order)
        fill = 0.0
        while unassigned:
            # Next saturation point: smallest residual/weight-sum over
            # links still carrying unfrozen flows.
            delta = math.inf
            for link, crossing in link_flows.items():
                if crossing:
                    delta = min(delta, residual[link] / wsum[link])
            if not math.isfinite(delta):  # pragma: no cover - defensive
                break
            fill += delta
            saturated = []
            for link, crossing in link_flows.items():
                if crossing:
                    residual[link] -= delta * wsum[link]
                    if residual[link] <= EPSILON * max(1.0, _link_scale(link)):
                        saturated.append(link)
            frozen: Set[Flow] = set()
            for link in saturated:
                frozen |= link_flows[link]
            if not frozen:  # pragma: no cover - numerical safety
                frozen = set(unassigned)
            for flow in frozen:
                flow.rate = fill * flow.weight
                unassigned.discard(flow)
                for link in self._alloc_links(flow):
                    link_flows[link].discard(flow)
                    wsum[link] -= flow.weight
                if flow.rate_cap is not None:
                    cap_key = ("cap", flow.id)
                    link_flows[cap_key].discard(flow)
                    wsum[cap_key] -= flow.weight

    def _schedule_completion(self, flow: Flow) -> None:
        """(Re)arm the completion timer for ``flow`` at its current rate.

        Incremental mode skips re-arming when the rate is unchanged
        within EPSILON: the deadline the live timer already carries is
        ``armed_time + remaining_at_arm/rate == now + remaining_now/rate``
        for an unchanged rate, so descheduling and re-arming would be
        pure heap churn (any sub-EPSILON drift is absorbed by the
        re-check in :meth:`_maybe_complete`).
        """
        if (self._incremental and flow._timer is not None and flow.rate > 0
                and abs(flow.rate - flow._armed_rate)
                <= EPSILON * max(1.0, flow.rate)):
            self.stats["timers_skipped"] += 1
            return
        flow._epoch += 1
        epoch = flow._epoch
        if flow._timer is not None:
            flow._timer.deschedule()
            flow._timer = None
        if flow.rate <= 0:  # starved; will be rescheduled on next recompute
            return
        eta = flow.remaining / flow.rate
        flow._timer = self.sim.call_in(
            eta, lambda _ev: self._maybe_complete(flow, epoch))
        flow._armed_rate = flow.rate
        self.stats["timers_armed"] += 1

    def _maybe_complete(self, flow: Flow, epoch: int) -> None:
        if flow._epoch != epoch or flow not in self._active:
            return  # superseded by a later recompute or cancellation
        flow._timer = None  # this timer has fired; never skip-reuse it
        if self._incremental:
            self._settle((flow,))
        else:
            self._settle(self._active)
        if flow.remaining > EPSILON * max(1.0, flow.size):
            # Numerical drift: rearm.
            self._schedule_completion(flow)
            return
        flow.remaining = 0.0
        self._active.discard(flow)
        latency = sum(l.latency for l in flow.path)
        self._finish_after_latency(flow, latency)
        if self._incremental:
            self._unindex(flow)
            self._mark_dirty(links=self._alloc_links(flow))
        else:
            self._recompute()

    def _finish_after_latency(self, flow: Flow, latency: float) -> None:
        def fire(_ev):
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
            if self.taps:
                record = FlowRecord(flow)
                for tap in self.taps:
                    tap(record)

        # One schedule() either way (zero latency fires at now, NORMAL),
        # so the kernel sequence stream — and determinism — is unchanged.
        self.sim.call_in(latency, fire)


def _link_scale(link) -> float:
    """Bandwidth of a real or virtual link (for epsilon scaling)."""
    return getattr(link, "bandwidth", 1.0)
