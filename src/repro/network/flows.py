"""Flow-level data transfers with max-min fair bandwidth sharing.

This is the fluid traffic model standing in for the paper's real WAN and
LAN links.  Every bulk transfer (a migration round, a MapReduce shuffle,
an image propagation hop) is a :class:`Flow` routed over the
:class:`~repro.network.topology.Topology`.  Whenever a flow starts or
finishes, the scheduler recomputes the **max-min fair** allocation over
every directed link via progressive filling — the textbook model of how
competing TCP streams share bottlenecks — and reschedules each flow's
completion accordingly.

Per-flow rate caps (e.g. a VM NIC, or a deliberately throttled migration)
are modeled as virtual single-flow links, which integrates them exactly
into the water-filling computation.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional, Set

from ..simkernel import Event, Simulator
from .billing import BillingMeter
from .topology import DirectedLink, NetworkError, Topology

#: Numerical slack for rate / byte comparisons.
EPSILON = 1e-9


class FlowCancelled(NetworkError):
    """Raised into waiters when a flow is cancelled mid-transfer."""


class Flow:
    """A single in-flight bulk transfer.

    Attributes
    ----------
    done:
        Event that succeeds with the flow itself once the last byte has
        arrived (drain time plus one-way path latency), or fails with
        :class:`FlowCancelled`.
    rate:
        Current max-min fair rate (bytes/second), updated by the
        scheduler as competing flows come and go.
    """

    _ids = itertools.count()

    __slots__ = (
        "id", "src", "dst", "size", "remaining", "rate", "path", "done",
        "started_at", "finished_at", "rate_cap", "tag", "meta",
        "_last_settled", "_epoch", "_timer",
    )

    def __init__(self, sim: Simulator, src: str, dst: str, size: float,
                 path: List[DirectedLink], rate_cap: Optional[float],
                 tag: str, meta: dict):
        self.id = next(Flow._ids)
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.path = path
        self.done: Event = sim.event()
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self.rate_cap = rate_cap
        self.tag = tag
        self.meta = meta
        self._last_settled = sim.now
        self._epoch = 0
        self._timer = None

    @property
    def transferred(self) -> float:
        """Bytes moved so far (settled view)."""
        return self.size - self.remaining

    def __repr__(self):
        return (f"<Flow #{self.id} {self.src}->{self.dst} "
                f"{self.size:.3g}B remaining={self.remaining:.3g}B>")


class FlowRecord:
    """Immutable summary of a completed flow, delivered to taps."""

    __slots__ = ("src", "dst", "size", "started_at", "finished_at",
                 "tag", "meta")

    def __init__(self, flow: Flow):
        self.src = flow.src
        self.dst = flow.dst
        self.size = flow.size
        self.started_at = flow.started_at
        self.finished_at = flow.finished_at
        self.tag = flow.tag
        self.meta = dict(flow.meta)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self):
        return f"<FlowRecord {self.src}->{self.dst} {self.size:.3g}B {self.tag}>"


class FlowScheduler:
    """Runs all flows over a topology with max-min fair sharing.

    Parameters
    ----------
    sim, topology:
        The simulation kernel and network graph.
    billing:
        Optional :class:`BillingMeter`; inter-site bytes are accounted
        progressively, so cancelled flows are billed for what they
        actually moved.
    """

    def __init__(self, sim: Simulator, topology: Topology,
                 billing: Optional[BillingMeter] = None):
        self.sim = sim
        self.topology = topology
        self.billing = billing
        self._active: Set[Flow] = set()
        #: Callbacks invoked with a :class:`FlowRecord` on flow completion.
        self.taps: List[Callable[[FlowRecord], None]] = []

    # -- public API ----------------------------------------------------------

    @property
    def active_flows(self) -> Set[Flow]:
        """The flows currently in flight (do not mutate)."""
        return self._active

    def start_flow(self, src: str, dst: str, size: float,
                   rate_cap: Optional[float] = None, tag: str = "data",
                   **meta) -> Flow:
        """Begin transferring ``size`` bytes from site ``src`` to ``dst``.

        Returns the :class:`Flow`; wait on ``flow.done`` for completion.
        Zero-sized flows complete after the path latency alone.
        """
        if size < 0:
            raise ValueError(f"negative flow size {size}")
        path = self.topology.path(src, dst)
        flow = Flow(self.sim, src, dst, size, path, rate_cap, tag, meta)
        latency = sum(l.latency for l in path)
        if size == 0:
            self._finish_after_latency(flow, latency)
            return flow
        self._active.add(flow)
        self._recompute()
        return flow

    def transfer(self, src: str, dst: str, size: float, **kwargs) -> Event:
        """Convenience: start a flow and return its completion event."""
        return self.start_flow(src, dst, size, **kwargs).done

    def rebalance(self) -> None:
        """Re-run the fair-share allocation now.

        Call after changing link capacities at runtime
        (:meth:`Topology.set_bandwidth`); flow arrivals and departures
        trigger this automatically.
        """
        self._recompute()

    def cancel(self, flow: Flow) -> None:
        """Abort an in-flight flow; its waiters see :class:`FlowCancelled`."""
        if flow not in self._active:
            return
        self._settle_all()
        self._active.discard(flow)
        flow._epoch += 1
        if flow._timer is not None:
            flow._timer.deschedule()
            flow._timer = None
        flow.done.fail(FlowCancelled(f"{flow!r} cancelled"))
        flow.done.defused = True  # cancellation is never a crash
        self._recompute()

    # -- internals --------------------------------------------------------

    def _settle_all(self) -> None:
        """Advance every flow's byte counter to the current instant."""
        now = self.sim.now
        for flow in self._active:
            dt = now - flow._last_settled
            if dt > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * dt)
                flow.remaining -= moved
                if self.billing is not None:
                    self.billing.record(flow.src, flow.dst, moved)
            flow._last_settled = now

    def _recompute(self) -> None:
        """Settle, re-run max-min fair allocation, reschedule completions."""
        self._settle_all()
        self._maxmin_rates()
        for flow in self._active:
            self._schedule_completion(flow)

    def _maxmin_rates(self) -> None:
        """Progressive-filling max-min fair allocation.

        All unfrozen flows' rates rise uniformly; when a link saturates,
        the flows crossing it freeze at the current fill level.  A
        per-flow rate cap is a virtual link carrying only that flow.
        """
        if not self._active:
            return
        # Map each (shared or virtual) link to the flows crossing it.
        link_flows: Dict[object, Set[Flow]] = {}
        residual: Dict[object, float] = {}
        for flow in self._active:
            for link in flow.path:
                link_flows.setdefault(link, set()).add(flow)
                residual[link] = link.bandwidth
            if flow.rate_cap is not None:
                cap_key = ("cap", flow.id)
                link_flows[cap_key] = {flow}
                residual[cap_key] = flow.rate_cap

        unassigned = set(self._active)
        fill = 0.0
        while unassigned:
            # Next saturation point: smallest residual/flow-count over
            # links still carrying unfrozen flows.
            delta = math.inf
            for link, flows in link_flows.items():
                n = len(flows)
                if n:
                    delta = min(delta, residual[link] / n)
            if not math.isfinite(delta):  # pragma: no cover - defensive
                break
            fill += delta
            saturated = []
            for link, flows in link_flows.items():
                n = len(flows)
                if n:
                    residual[link] -= delta * n
                    if residual[link] <= EPSILON * max(1.0, link_flows_cap(link)):
                        saturated.append(link)
            frozen: Set[Flow] = set()
            for link in saturated:
                frozen |= link_flows[link]
            if not frozen:  # pragma: no cover - numerical safety
                frozen = set(unassigned)
            for flow in frozen:
                flow.rate = fill
                unassigned.discard(flow)
                for link in flow.path:
                    link_flows[link].discard(flow)
                if flow.rate_cap is not None:
                    link_flows[("cap", flow.id)].discard(flow)

    def _schedule_completion(self, flow: Flow) -> None:
        """(Re)arm the completion timer for ``flow`` at its current rate."""
        flow._epoch += 1
        epoch = flow._epoch
        if flow._timer is not None:
            flow._timer.deschedule()
            flow._timer = None
        if flow.rate <= 0:  # starved; will be rescheduled on next recompute
            return
        eta = flow.remaining / flow.rate
        timer = self.sim.timeout(eta)
        timer.callbacks.append(lambda _ev: self._maybe_complete(flow, epoch))
        flow._timer = timer

    def _maybe_complete(self, flow: Flow, epoch: int) -> None:
        if flow._epoch != epoch or flow not in self._active:
            return  # superseded by a later recompute or cancellation
        self._settle_all()
        if flow.remaining > EPSILON * max(1.0, flow.size):
            # Numerical drift: rearm.
            self._schedule_completion(flow)
            return
        flow.remaining = 0.0
        flow._timer = None
        self._active.discard(flow)
        latency = sum(l.latency for l in flow.path)
        self._finish_after_latency(flow, latency)
        self._recompute()

    def _finish_after_latency(self, flow: Flow, latency: float) -> None:
        def fire(_ev):
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
            if self.taps:
                record = FlowRecord(flow)
                for tap in self.taps:
                    tap(record)

        if latency > 0:
            timer = self.sim.timeout(latency)
            timer.callbacks.append(fire)
        else:
            stub = self.sim.event()
            stub.callbacks.append(fire)
            stub.succeed()


def link_flows_cap(link) -> float:
    """Bandwidth of a real or virtual link (for epsilon scaling)."""
    return link.bandwidth if isinstance(link, DirectedLink) else 1.0
