"""Traffic accounting.

Cloud customers are billed for traffic entering and leaving each cloud
(the paper stresses this twice: WAN bandwidth is what Shrinker saves, and
cross-cloud chatter is what the autonomic planner minimizes).  The
:class:`BillingMeter` records every inter-site byte the flow scheduler
moves, keeps per-site ingress/egress totals and a site-pair matrix, and
prices them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from .units import GB_DECIMAL


class BillingMeter:
    """Accumulates inter-site traffic and converts it to cost.

    Intra-site traffic is free and is not recorded.
    """

    def __init__(self, price_per_gb_egress: float = 0.09,
                 price_per_gb_ingress: float = 0.0):
        self.price_per_gb_egress = price_per_gb_egress
        self.price_per_gb_ingress = price_per_gb_ingress
        self.egress_bytes: Dict[str, float] = defaultdict(float)
        self.ingress_bytes: Dict[str, float] = defaultdict(float)
        self.pair_bytes: Dict[Tuple[str, str], float] = defaultdict(float)

    def record(self, src_site: str, dst_site: str, nbytes: float) -> None:
        """Account ``nbytes`` moving from ``src_site`` to ``dst_site``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        if src_site == dst_site or nbytes == 0:
            return
        self.egress_bytes[src_site] += nbytes
        self.ingress_bytes[dst_site] += nbytes
        self.pair_bytes[(src_site, dst_site)] += nbytes

    @property
    def total_cross_site_bytes(self) -> float:
        """All bytes that crossed a site boundary."""
        return sum(self.pair_bytes.values())

    def site_cost(self, site: str) -> float:
        """Billed cost for one site's ingress + egress traffic."""
        return (self.egress_bytes.get(site, 0.0) / GB_DECIMAL
                * self.price_per_gb_egress
                + self.ingress_bytes.get(site, 0.0) / GB_DECIMAL
                * self.price_per_gb_ingress)

    def total_cost(self) -> float:
        """Billed cost across every site."""
        sites = set(self.egress_bytes) | set(self.ingress_bytes)
        return sum(self.site_cost(s) for s in sites)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A plain-dict copy of the current counters (for reports)."""
        return {
            "egress": dict(self.egress_bytes),
            "ingress": dict(self.ingress_bytes),
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.egress_bytes.clear()
        self.ingress_bytes.clear()
        self.pair_bytes.clear()

    def __repr__(self):
        return (f"<BillingMeter cross-site={self.total_cross_site_bytes:.3g}B "
                f"cost=${self.total_cost():.2f}>")
