"""Unit helpers.  The simulation uses **bytes** and **seconds** throughout;
bandwidths are bytes/second.  These constants make call sites read like the
paper ("a 1 Gbit/s WAN link", "a 4 KiB page")."""

#: Sizes (bytes).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Decimal sizes, used by providers when billing per GB.
GB_DECIMAL = 10 ** 9

#: Bandwidths (bytes/second) from bit-rates.
Kbit = 1000 / 8
Mbit = 1000 * Kbit
Gbit = 1000 * Mbit

#: A conventional 4 KiB memory page.
PAGE_SIZE = 4 * KB

#: Ethernet-ish MTU used by the packet-count estimator.
MTU = 1500


def mbit_per_s(n: float) -> float:
    """``n`` megabits per second, as bytes/second."""
    return n * Mbit


def gbit_per_s(n: float) -> float:
    """``n`` gigabits per second, as bytes/second."""
    return n * Gbit
