"""The typed transfer spine: one facade over the flow scheduler.

Twelve modules across six layers (hypervisor migration, shrinker, cloud
propagation and contextualization, sky federation / checkpoint /
migration API, MapReduce shuffle, ViNe TCP, pattern capture) move bulk
bytes.  Historically each reached into
:class:`~repro.network.flows.FlowScheduler` with its own tag / metadata
conventions; :class:`Transport` consolidates them behind **typed
transfer classes**:

===============  =========================================================
class            carries
===============  =========================================================
``MIGRATION``    pre-copy rounds, cluster checkpoints and restores
``SHUFFLE``      MapReduce input fetches and map->reduce shuffle
``PROPAGATION``  VM image unicast / broadcast-chain / cross-cloud replicas
``CONTROL``      contextualization messages, migration-API auth handshakes
``DATA``         application traffic (TCP payloads, workload patterns)
===============  =========================================================

Each class has a :class:`ClassPolicy` — an optional per-transfer rate
cap, an optional *aggregate* ceiling over all concurrent transfers of
the class (a :class:`~repro.network.flows.SharedCap` virtual link), and
a priority used as the weighted max-min share.  The defaults are all
no-ops, so a policy-free Transport is numerically identical to raw
``start_flow`` calls.

Every completed transfer is delivered to the Transport's tap registry as
a structured :class:`TransferRecord` (attribute-compatible with
:class:`~repro.network.flows.FlowRecord`, plus the class), and per-class
byte/transfer counters can be streamed into a
:class:`~repro.metrics.MetricsRecorder` via :meth:`Transport.bind_metrics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs.trace import tracer_of
from .flows import Flow, FlowRecord, FlowScheduler, SharedCap


class TransferClass(enum.Enum):
    """What a bulk transfer is *for* (the taxonomy above)."""

    MIGRATION = "migration"
    SHUFFLE = "shuffle"
    PROPAGATION = "propagation"
    CONTROL = "control"
    DATA = "data"

    def __str__(self):
        return self.value


#: Legacy flow tags -> transfer class, so flows started through the raw
#: scheduler API (old call sites, tests) still classify correctly.
TAG_CLASSES: Dict[str, TransferClass] = {
    "migration": TransferClass.MIGRATION,
    "checkpoint": TransferClass.MIGRATION,
    "restore": TransferClass.MIGRATION,
    "mr-input": TransferClass.SHUFFLE,
    "mr-shuffle": TransferClass.SHUFFLE,
    "image-unicast": TransferClass.PROPAGATION,
    "image-chain": TransferClass.PROPAGATION,
    "image-replication": TransferClass.PROPAGATION,
    "context": TransferClass.CONTROL,
    "auth": TransferClass.CONTROL,
}


@dataclass
class ClassPolicy:
    """Per-class transfer knobs.  All defaults are no-ops.

    Parameters
    ----------
    rate_cap:
        Cap applied to each individual transfer of the class (combined
        with any per-call cap by taking the minimum).
    aggregate_cap:
        Ceiling on the *summed* rate of all concurrent transfers of the
        class, enforced as a shared virtual link in the max-min
        allocation (e.g. "migrations may never use more than 30% of the
        WAN").
    priority:
        Weighted max-min share at contended links; 1.0 is plain fair
        sharing, 2.0 gets twice the bandwidth of a weight-1.0 flow at a
        shared bottleneck.
    """

    rate_cap: Optional[float] = None
    aggregate_cap: Optional[float] = None
    priority: float = 1.0


class TransferRecord:
    """Structured summary of a completed transfer, delivered to taps.

    Attribute-compatible with :class:`FlowRecord` (``src``, ``dst``,
    ``size``, ``started_at``, ``finished_at``, ``tag``, ``meta``,
    ``duration``), plus ``transfer_class``.
    """

    __slots__ = ("transfer_class", "src", "dst", "size", "started_at",
                 "finished_at", "tag", "meta")

    def __init__(self, transfer_class: TransferClass, record: FlowRecord):
        self.transfer_class = transfer_class
        self.src = record.src
        self.dst = record.dst
        self.size = record.size
        self.started_at = record.started_at
        self.finished_at = record.finished_at
        self.tag = record.tag
        self.meta = record.meta

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self):
        return (f"<TransferRecord {self.transfer_class.value} "
                f"{self.src}->{self.dst} {self.size:.3g}B {self.tag}>")


class Transport:
    """Typed transfer facade over one :class:`FlowScheduler`.

    There is normally one Transport per scheduler, obtained with
    :meth:`Transport.of`; constructors across the stack accept either a
    scheduler or a Transport and normalize through it, so the whole
    simulation shares one tap registry and one set of class policies.
    """

    def __init__(self, scheduler: FlowScheduler,
                 policies: Optional[Dict[TransferClass, ClassPolicy]] = None):
        self.scheduler = scheduler
        self.sim = scheduler.sim
        self.policies: Dict[TransferClass, ClassPolicy] = {
            cls: ClassPolicy() for cls in TransferClass
        }
        if policies:
            self.policies.update(policies)
        self._shared_caps: Dict[TransferClass, SharedCap] = {}
        #: Callbacks invoked with a :class:`TransferRecord` on completion.
        self.taps: List[Callable[[TransferRecord], None]] = []
        self.bytes_by_class: Dict[TransferClass, float] = {
            cls: 0.0 for cls in TransferClass
        }
        self.transfers_by_class: Dict[TransferClass, int] = {
            cls: 0 for cls in TransferClass
        }
        # Memoized per-class throughput instruments, keyed by the
        # recorder they were resolved against (it can be swapped).
        self._hist_cache = (None, {})
        scheduler.taps.append(self._observe)

    @classmethod
    def of(cls, obj) -> "Transport":
        """Normalize a scheduler-or-transport to the shared Transport.

        The first call on a scheduler creates its Transport and caches
        it on the scheduler, so every layer resolves to the same
        instance (one tap registry, one policy table).
        """
        if isinstance(obj, Transport):
            return obj
        transport = getattr(obj, "_default_transport", None)
        if transport is None:
            transport = cls(obj)
            obj._default_transport = transport
        return transport

    # -- policy --------------------------------------------------------------

    def set_policy(self, transfer_class: TransferClass,
                   policy: ClassPolicy) -> None:
        """Replace the policy for a class.

        Rate caps and priorities apply to transfers started after this
        call; a changed ``aggregate_cap`` re-rates the class's in-flight
        transfers immediately (the shared virtual link is resized and
        the scheduler notified, like a WAN capacity change)."""
        self.policies[transfer_class] = policy
        cap = self._shared_caps.get(transfer_class)
        if cap is not None and policy.aggregate_cap is not None:
            cap.bandwidth = float(policy.aggregate_cap)
            self.scheduler.links_changed([cap])

    def _class_cap(self, transfer_class: TransferClass,
                   aggregate_cap: float) -> SharedCap:
        cap = self._shared_caps.get(transfer_class)
        if cap is None:
            cap = SharedCap(f"class:{transfer_class.value}", aggregate_cap)
            self._shared_caps[transfer_class] = cap
        return cap

    # -- starting transfers --------------------------------------------------

    def start(self, transfer_class: TransferClass, src: str, dst: str,
              size: float, rate_cap: Optional[float] = None,
              tag: Optional[str] = None, priority: Optional[float] = None,
              span=None, **meta) -> Flow:
        """Start a typed transfer; returns the underlying :class:`Flow`
        (wait on ``flow.done``).

        ``span`` is an optional parent :class:`~repro.obs.Span`: with a
        tracer installed, the transfer gets a child span covering its
        whole network time, ended (status ``cancelled`` on cancellation)
        when the flow completes."""
        policy = self.policies[transfer_class]
        caps = [c for c in (rate_cap, policy.rate_cap) if c is not None]
        effective_cap = min(caps) if caps else None
        shared = ()
        if policy.aggregate_cap is not None:
            shared = (self._class_cap(transfer_class, policy.aggregate_cap),)
        meta.setdefault("transfer_class", transfer_class)
        flow = self.scheduler.start_flow(
            src, dst, size,
            rate_cap=effective_cap,
            tag=tag if tag is not None else transfer_class.value,
            weight=priority if priority is not None else policy.priority,
            shared_caps=shared,
            **meta,
        )
        tracer = tracer_of(self.sim)
        if tracer.enabled:
            xfer = tracer.start(
                f"xfer:{transfer_class.value}", parent=span,
                track=None if span is not None and span.track is not None
                else f"net:{transfer_class.value}",
                src=src, dst=dst, bytes=size,
            )
            xfer.end_on(flow.done)
        return flow

    def migration(self, src: str, dst: str, size: float, **kwargs) -> Flow:
        """Pre-copy round / checkpoint / restore traffic."""
        return self.start(TransferClass.MIGRATION, src, dst, size, **kwargs)

    def shuffle(self, src: str, dst: str, size: float, **kwargs) -> Flow:
        """MapReduce input fetch and map->reduce shuffle traffic."""
        return self.start(TransferClass.SHUFFLE, src, dst, size, **kwargs)

    def propagation(self, src: str, dst: str, size: float, **kwargs) -> Flow:
        """VM image distribution and cross-cloud replication traffic."""
        return self.start(TransferClass.PROPAGATION, src, dst, size, **kwargs)

    def control(self, src: str, dst: str, size: float, **kwargs) -> Flow:
        """Small control-plane messages (contextualization, auth)."""
        return self.start(TransferClass.CONTROL, src, dst, size, **kwargs)

    def data(self, src: str, dst: str, size: float, **kwargs) -> Flow:
        """Application payload traffic."""
        return self.start(TransferClass.DATA, src, dst, size, **kwargs)

    # -- observation ---------------------------------------------------------

    @staticmethod
    def classify(record: FlowRecord) -> TransferClass:
        """Transfer class of a (possibly legacy) flow record."""
        cls = record.meta.get("transfer_class")
        if isinstance(cls, TransferClass):
            return cls
        return TAG_CLASSES.get(record.tag, TransferClass.DATA)

    def _observe(self, record: FlowRecord) -> None:
        cls = self.classify(record)
        self.bytes_by_class[cls] += record.size
        self.transfers_by_class[cls] += 1
        # Per-class achieved throughput for the watchtower's SLO floors.
        # The recorder is discovered through the simulator (attribute
        # lookup, None when no recorder is installed) rather than an
        # import: repro.metrics imports this package at module level.
        rec = getattr(self.sim, "_metrics", None)
        if rec is not None:
            duration = record.finished_at - record.started_at
            if duration > 0 and record.size > 0:
                cached_rec, hists = self._hist_cache
                if cached_rec is not rec:
                    hists = {}
                    self._hist_cache = (rec, hists)
                hist = hists.get(cls)
                if hist is None:
                    hist = hists[cls] = rec.histogram(
                        "transport.throughput",
                        labels={"class": cls.value},
                    )
                hist.observe(record.size / duration)
        if self.taps:
            transfer = TransferRecord(cls, record)
            for tap in self.taps:
                tap(transfer)

    def bind_metrics(self, metrics, prefix: str = "transport") -> None:
        """Stream per-class counters into a
        :class:`~repro.metrics.MetricsRecorder`: each completion appends
        the cumulative class byte count to ``<prefix>.<class>.bytes``
        and the transfer count to ``<prefix>.<class>.transfers``."""
        def tap(transfer: TransferRecord) -> None:
            name = f"{prefix}.{transfer.transfer_class.value}"
            metrics.record(f"{name}.bytes",
                           self.bytes_by_class[transfer.transfer_class])
            metrics.record(f"{name}.transfers",
                           self.transfers_by_class[transfer.transfer_class])

        self.taps.append(tap)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class totals, JSON-ready."""
        return {
            cls.value: {
                "bytes": self.bytes_by_class[cls],
                "transfers": self.transfers_by_class[cls],
            }
            for cls in TransferClass
        }

    def __repr__(self):
        total = sum(self.transfers_by_class.values())
        return f"<Transport transfers={total} over {self.scheduler!r}>"
