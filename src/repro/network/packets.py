"""Packet-count estimation helpers for the traffic sniffer.

The flow model is fluid, but the paper's communication-pattern framework
captures *packets* at the hypervisor.  These helpers convert flow records
into estimated packet counts (payload / MTU segmentation plus ACKs) so
the pattern-detection layer can work in the same units as a real
libpcap-based capture.
"""

from __future__ import annotations

import math

from .flows import FlowRecord
from .units import MTU

#: TCP/IP header bytes per segment (IP 20 + TCP 20).
HEADER_BYTES = 40
#: Pure-ACK packets per data segment in a typical stream (delayed ACKs).
ACKS_PER_SEGMENT = 0.5


def segments(nbytes: float, mtu: int = MTU) -> int:
    """Number of MTU-sized segments needed for ``nbytes`` of payload."""
    if nbytes < 0:
        raise ValueError(f"negative byte count {nbytes}")
    payload_per_segment = mtu - HEADER_BYTES
    return int(math.ceil(nbytes / payload_per_segment)) if nbytes else 0


def wire_bytes(nbytes: float, mtu: int = MTU) -> float:
    """Bytes on the wire including per-segment headers and ACKs."""
    n = segments(nbytes, mtu)
    return nbytes + n * HEADER_BYTES + ACKS_PER_SEGMENT * n * HEADER_BYTES


def record_packets(record: FlowRecord, mtu: int = MTU) -> int:
    """Estimated packet count observed for a completed flow."""
    n = segments(record.size, mtu)
    return n + int(ACKS_PER_SEGMENT * n)
