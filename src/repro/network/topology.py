"""Sites, links and the multi-cloud topology graph.

A :class:`Site` models one data center / cloud region: it has a LAN
(bandwidth + latency), an addressing regime (public or private/NATed) and
an optional firewall that blocks unsolicited inbound connections —
exactly the obstacles the paper's ViNe overlay exists to overcome.

Sites are connected by full-duplex :class:`Link` objects (one
:class:`DirectedLink` per direction) arranged in a
:class:`Topology` (a thin layer over a :mod:`networkx` DiGraph).  Paths
are shortest-latency and cached until the topology changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .units import Gbit, Mbit


class NetworkError(Exception):
    """Base class for network-substrate errors."""


class NoRoute(NetworkError):
    """There is no path between the requested endpoints."""


@dataclass
class DirectedLink:
    """One direction of a physical link: a shared-bandwidth pipe."""

    src: str
    dst: str
    bandwidth: float  # bytes/second
    latency: float  # seconds (one-way)

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def __hash__(self):
        return hash((self.src, self.dst))

    def __repr__(self):
        return f"<Link {self.src}->{self.dst} {self.bandwidth:.3g} B/s>"


@dataclass
class Site:
    """A cloud site (data center): LAN characteristics and reachability.

    Parameters
    ----------
    name:
        Unique site identifier, e.g. ``"rennes"``.
    lan_bandwidth, lan_latency:
        Capacity and one-way latency of the internal LAN, shared by all
        intra-site flows.
    public_addresses:
        True if VMs at this site receive publicly routable addresses.
        Private sites sit behind NAT and cannot accept unsolicited
        inbound traffic without an overlay.
    firewall_inbound_open:
        True if the site firewall accepts unsolicited inbound
        connections from other sites.
    """

    name: str
    lan_bandwidth: float = 1 * Gbit
    lan_latency: float = 0.0005
    public_addresses: bool = True
    firewall_inbound_open: bool = True
    #: Free-form annotations (provider, country, ...).
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if self.lan_bandwidth <= 0:
            raise ValueError("lan_bandwidth must be positive")

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return f"<Site {self.name}>"


class Topology:
    """The inter-site network graph.

    Examples
    --------
    >>> topo = Topology()
    >>> a = topo.add_site(Site("a"))
    >>> b = topo.add_site(Site("b"))
    >>> topo.connect("a", "b", bandwidth=100 * Mbit, latency=0.05)
    >>> [l.dst for l in topo.path("a", "b")]
    ['b']
    """

    def __init__(self):
        self._graph = nx.DiGraph()
        self._sites: Dict[str, Site] = {}
        self._lan_links: Dict[str, DirectedLink] = {}
        self._path_cache: Dict[Tuple[str, str], List[DirectedLink]] = {}
        self._listeners: List = []

    # -- change notification -------------------------------------------------

    def attach(self, listener) -> None:
        """Register an object whose ``links_changed(links)`` method is
        called whenever link capacities change at runtime
        (:class:`~repro.network.flows.FlowScheduler` attaches itself)."""
        if not any(l is listener for l in self._listeners):
            self._listeners.append(listener)

    def detach(self, listener) -> None:
        """Stop notifying ``listener`` of capacity changes."""
        self._listeners = [l for l in self._listeners if l is not listener]

    # -- construction ------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        """Register a site; returns it for chaining."""
        if site.name in self._sites:
            raise ValueError(f"site {site.name!r} already exists")
        self._sites[site.name] = site
        self._graph.add_node(site.name)
        # The LAN is modeled as a single shared pipe within the site.
        self._lan_links[site.name] = DirectedLink(
            src=site.name, dst=site.name,
            bandwidth=site.lan_bandwidth, latency=site.lan_latency,
        )
        self._path_cache.clear()
        return site

    def connect(self, a: str, b: str, bandwidth: float, latency: float,
                bandwidth_reverse: Optional[float] = None) -> None:
        """Create a full-duplex WAN link between sites ``a`` and ``b``."""
        for name in (a, b):
            if name not in self._sites:
                raise KeyError(f"unknown site {name!r}")
        if a == b:
            raise ValueError("cannot connect a site to itself (LAN is implicit)")
        fwd = DirectedLink(a, b, bandwidth, latency)
        rev = DirectedLink(b, a, bandwidth_reverse or bandwidth, latency)
        self._graph.add_edge(a, b, link=fwd, weight=latency)
        self._graph.add_edge(b, a, link=rev, weight=latency)
        self._path_cache.clear()

    def disconnect(self, a: str, b: str) -> None:
        """Remove the link between ``a`` and ``b`` (both directions)."""
        self._graph.remove_edge(a, b)
        self._graph.remove_edge(b, a)
        self._path_cache.clear()

    def set_bandwidth(self, a: str, b: str, bandwidth: float,
                      both_directions: bool = True) -> None:
        """Change a link's capacity at runtime (WAN congestion, QoS
        re-provisioning).  Attached schedulers are notified, so
        in-flight flows are re-rated without a manual
        :meth:`FlowScheduler.rebalance`."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        try:
            fwd = self._graph.edges[a, b]["link"]
            rev = self._graph.edges[b, a]["link"] if both_directions else None
        except KeyError:
            raise KeyError(f"no link between {a!r} and {b!r}") from None
        fwd.bandwidth = bandwidth
        changed = [fwd]
        if rev is not None:
            rev.bandwidth = bandwidth
            changed.append(rev)
        for listener in list(self._listeners):
            listener.links_changed(changed)

    # -- queries -------------------------------------------------------------

    @property
    def sites(self) -> Dict[str, Site]:
        """Mapping of site name to :class:`Site` (read-only by convention)."""
        return self._sites

    def site(self, name: str) -> Site:
        """Look up a site by name."""
        try:
            return self._sites[name]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def lan(self, name: str) -> DirectedLink:
        """The LAN pipe of a site."""
        return self._lan_links[name]

    def path(self, src: str, dst: str) -> List[DirectedLink]:
        """Shortest-latency directed path ``src -> dst`` as link objects.

        For ``src == dst`` the path is the site's LAN pipe.  Raises
        :class:`NoRoute` when the sites are disconnected.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = [self._lan_links[src]]
        else:
            try:
                nodes = nx.shortest_path(self._graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                raise NoRoute(f"no route from {src!r} to {dst!r}") from None
            path = [
                self._graph.edges[u, v]["link"]
                for u, v in zip(nodes[:-1], nodes[1:])
            ]
        self._path_cache[key] = path
        return path

    def path_latency(self, src: str, dst: str) -> float:
        """One-way latency along the chosen path."""
        return sum(link.latency for link in self.path(src, dst))

    def reachable_directly(self, src: str, dst: str) -> bool:
        """Can ``src`` open an unsolicited connection straight to ``dst``?

        Cross-site traffic requires the destination to have public
        addresses and an open firewall; this is the connectivity gap the
        ViNe overlay fills.
        """
        if src == dst:
            return True
        try:
            self.path(src, dst)
        except NoRoute:
            return False
        dst_site = self.site(dst)
        return dst_site.public_addresses and dst_site.firewall_inbound_open

    def __repr__(self):
        return (f"<Topology sites={len(self._sites)} "
                f"links={self._graph.number_of_edges() // 2}>")
