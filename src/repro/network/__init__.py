"""Network substrate: topology, fair-shared flows, TCP, NAT, billing.

This package is the simulated stand-in for the paper's physical
networks (Grid'5000 <-> FutureGrid WAN links, site LANs): a flow-level
fluid model with max-min fair bandwidth sharing, one-way latencies,
NAT/firewall reachability semantics, per-site traffic billing, and a TCP
connection abstraction whose failure modes match the paper's analysis of
why live migration cannot cross LAN boundaries.
"""

from .billing import BillingMeter
from .flows import (
    EPSILON,
    Flow,
    FlowCancelled,
    FlowRecord,
    FlowScheduler,
    SharedCap,
)
from .nat import (
    Address,
    AddressPool,
    Endpoint,
    PlainIPResolver,
    Resolver,
    Route,
    site_address_pools,
)
from .packets import record_packets, segments, wire_bytes
from .tcp import Connection, ConnectionBroken, ConnectionState
from .topology import DirectedLink, NetworkError, NoRoute, Site, Topology
from .transport import (
    ClassPolicy,
    Transport,
    TransferClass,
    TransferRecord,
)
from .units import (
    GB,
    GB_DECIMAL,
    Gbit,
    KB,
    Kbit,
    MB,
    MTU,
    Mbit,
    PAGE_SIZE,
    gbit_per_s,
    mbit_per_s,
)

__all__ = [
    "Address",
    "AddressPool",
    "BillingMeter",
    "ClassPolicy",
    "Connection",
    "ConnectionBroken",
    "ConnectionState",
    "DirectedLink",
    "EPSILON",
    "Endpoint",
    "Flow",
    "FlowCancelled",
    "FlowRecord",
    "FlowScheduler",
    "GB",
    "GB_DECIMAL",
    "Gbit",
    "KB",
    "Kbit",
    "MB",
    "MTU",
    "Mbit",
    "NetworkError",
    "NoRoute",
    "PAGE_SIZE",
    "PlainIPResolver",
    "Resolver",
    "Route",
    "SharedCap",
    "Site",
    "Topology",
    "Transport",
    "TransferClass",
    "TransferRecord",
    "gbit_per_s",
    "mbit_per_s",
    "record_packets",
    "segments",
    "site_address_pools",
    "wire_bytes",
]
