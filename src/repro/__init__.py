"""repro — reproduction of *Building Dynamic Computing Infrastructures
over Distributed Clouds* (Pierre Riteau, IPDPS 2011 PhD Forum).

The library implements, over a self-contained discrete-event simulated
substrate, every system the paper describes:

* :mod:`repro.simkernel` — the discrete-event kernel;
* :mod:`repro.network` — WAN/LAN flow model, TCP, NAT, billing;
* :mod:`repro.hypervisor` — VM content model and pre-copy live migration;
* :mod:`repro.shrinker` — deduplicating WAN migration (§III-A);
* :mod:`repro.vine` — the ViNe overlay and migration reconfiguration (§III-B);
* :mod:`repro.cloud` — the Nimbus-like IaaS toolkit, fast image
  propagation (§II) and the spot market;
* :mod:`repro.sky` — multi-cloud federation, cloud-API migration and
  migratable spot instances (§II, §IV);
* :mod:`repro.mapreduce` — the elastic Hadoop stand-in (§II);
* :mod:`repro.patterns` — communication-pattern detection (§III-C);
* :mod:`repro.autonomic` — communication-aware adaptation (§III-C);
* :mod:`repro.emr` — the Elastic MapReduce service (§IV);
* :mod:`repro.controlplane` — the multi-tenant control plane: job
  queue with admission control, lease-based grants, fair-share
  scheduling and self-healing over the federation;
* :mod:`repro.obs` — the causal tracing spine: spans, typed
  instruments, Perfetto export and the critical-path analyzer;
* :mod:`repro.workloads` — memory profiles, BLAST, price traces,
  communication patterns.

A complete control-plane scenario in five lines::

    from repro import ControlPlane
    from repro.testbeds import two_cloud_testbed

    tb = two_cloud_testbed(memory_pages=256, image_blocks=1024)
    plane = ControlPlane(tb.sim, tb.federation, tb.image_name).start()
    plane.register_tenant("alice", weight=2.0)
    jobs = [plane.submit("alice", n_nodes=2, runtime=120.0) for _ in range(3)]
    tb.sim.run(until=plane.all_done(jobs))

See ``examples/quickstart.py`` for a complete multi-cloud scenario.
"""

from .simkernel import Interrupt, Simulator
from .network import (
    BillingMeter,
    Connection,
    FlowScheduler,
    Site,
    Topology,
    gbit_per_s,
    mbit_per_s,
)
from .hypervisor import (
    LiveMigrator,
    MemoryImage,
    MigrationConfig,
    PhysicalHost,
    VirtualMachine,
)
from .shrinker import (
    ClusterMigrationCoordinator,
    ContentRegistry,
    RegistryDirectory,
    ShrinkerCodec,
    shrinker_codec_factory,
)
from .vine import MigrationReconfigurator, ViNeOverlay
from .cloud import Cloud, InstancePricing, SpotMarket, make_image
from .sky import (
    Balanced,
    Federation,
    MigratableSpotManager,
    SingleCloud,
    SkyMigrationService,
)
from .controlplane import (
    ControlPlane,
    FailureInjector,
    FairShareScheduler,
    HealthMonitor,
    Job,
    JobQueue,
    JobState,
    Lease,
    LeaseManager,
    SchedulerConfig,
    Tenant,
)
from .mapreduce import ElasticCluster, JobTracker, MapReduceJob
from .patterns import GroundTruthRecorder, HypervisorSniffer, TrafficMatrix
from .autonomic import AdaptationEngine, CommunicationAwarePlanner
from .emr import DeadlineScalePolicy, ElasticMapReduceService
from .framework import DynamicInfrastructure
from .metrics import MetricsRecorder, TimeSeries
from .obs import (
    Counter,
    Gauge,
    Histogram,
    Tracer,
    critical_path,
    to_chrome_trace,
    tracer_of,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptationEngine",
    "Balanced",
    "BillingMeter",
    "Cloud",
    "ClusterMigrationCoordinator",
    "CommunicationAwarePlanner",
    "Connection",
    "ContentRegistry",
    "ControlPlane",
    "Counter",
    "DeadlineScalePolicy",
    "DynamicInfrastructure",
    "ElasticCluster",
    "ElasticMapReduceService",
    "FailureInjector",
    "FairShareScheduler",
    "Federation",
    "FlowScheduler",
    "Gauge",
    "GroundTruthRecorder",
    "HealthMonitor",
    "Histogram",
    "HypervisorSniffer",
    "InstancePricing",
    "Interrupt",
    "Job",
    "JobQueue",
    "JobState",
    "JobTracker",
    "Lease",
    "LeaseManager",
    "LiveMigrator",
    "MapReduceJob",
    "MemoryImage",
    "MetricsRecorder",
    "MigratableSpotManager",
    "MigrationConfig",
    "MigrationReconfigurator",
    "PhysicalHost",
    "RegistryDirectory",
    "SchedulerConfig",
    "ShrinkerCodec",
    "SingleCloud",
    "Site",
    "Tenant",
    "Simulator",
    "TimeSeries",
    "SkyMigrationService",
    "SpotMarket",
    "Topology",
    "Tracer",
    "TrafficMatrix",
    "ViNeOverlay",
    "critical_path",
    "VirtualMachine",
    "gbit_per_s",
    "make_image",
    "mbit_per_s",
    "to_chrome_trace",
    "tracer_of",
    "shrinker_codec_factory",
]
