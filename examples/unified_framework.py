#!/usr/bin/env python3
"""The unified dynamic-infrastructure framework (paper's closing goal).

Everything in one run: a federation with an always-on transparent
sniffer, a cross-cloud cluster running periodic group communication,
the adaptation daemon that notices the pattern from live traffic and
repartitions the cluster with Shrinker migrations (connections
surviving via ViNe), all while metrics probes chart the WAN link.

Run:  python examples/unified_framework.py
"""

from repro.framework import DynamicInfrastructure
from repro.metrics import MetricsRecorder
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import run_pattern


def main():
    tb = sky_testbed(
        sites=[SiteSpec("rennes", region="eu", n_hosts=12),
               SiteSpec("chicago", region="us", n_hosts=12)],
        memory_pages=1024, image_blocks=4096,
    )
    sim = tb.sim
    infra = DynamicInfrastructure(tb)
    metrics = MetricsRecorder(sim)
    metrics.probe("xcloud-bytes",
                  lambda: tb.billing.total_cross_site_bytes,
                  interval=10.0)

    cluster = sim.run(until=infra.create_cluster(12))
    print(f"cluster up across {cluster.site_distribution()}; "
          "adaptation daemon watching (5-minute windows)")
    infra.watch(cluster, interval=300.0)

    # The application: three tight communication groups of four,
    # interleaved across the clouds by the initial Balanced placement.
    pattern = [
        (i, j, 3e6 if (i % 3) == (j % 3) else 5e4)
        for i in range(12) for j in range(12) if i != j
    ]

    def workload(sim):
        for _round in range(12):
            yield run_pattern(sim, tb.scheduler, cluster.vms, pattern,
                              rounds=1, interval=60.0)

    sim.process(workload(sim))
    sim.run(until=sim.now + 1800)

    print(f"\nafter 30 simulated minutes:")
    print(f"  adaptation rounds executed: {infra.total_adaptations}")
    print(f"  inter-cloud live migrations: {infra.migrations_executed()}")
    print(f"  final placement: {cluster.site_distribution()}")
    groups = {}
    for i, vm in enumerate(cluster.vms):
        groups.setdefault(i % 3, set()).add(vm.site)
    colocated = sum(1 for sites in groups.values() if len(sites) == 1)
    print(f"  communication groups fully colocated: {colocated}/3")

    series = metrics.series("xcloud-bytes")
    cum = series.values()
    third = len(cum) // 3
    early_rate = (cum[third] - cum[0]) / 2**20
    late_rate = (cum[-1] - cum[-third]) / 2**20
    print(f"\ncross-cloud traffic per 10-minute window: "
          f"first {early_rate:.0f} MiB -> last {late_rate:.0f} MiB "
          "(the adaptation moved the chatter off the WAN)")
    print(f"  total billed: "
          f"{tb.billing.total_cross_site_bytes / 2**20:.0f} MiB "
          f"(${tb.billing.total_cost():.4f})")


if __name__ == "__main__":
    main()
