#!/usr/bin/env python3
"""Migratable spot instances (paper §IV).

A batch of long-running jobs executes on spot instances in a cloud with
a volatile spot market.  When the price spikes above the bid, classic
spot instances are killed and restart their jobs from scratch elsewhere;
*migratable* spot instances live-migrate to another cloud during the
reclamation grace window and keep their work.

Run:  python examples/spot_market.py
"""

import numpy as np

from repro.cloud import SpotMarket, SpotState
from repro.sky import MigratableSpotManager
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess, spot_price_trace

JOB_SECONDS = 4 * 3600.0  # each instance runs a 4-hour computation
N_INSTANCES = 6
BID = 0.06


def run(migratable: bool, seed: int = 11):
    tb = sky_testbed(
        sites=[SiteSpec("spot-cloud", region="us", on_demand_hourly=0.10),
               SiteSpec("refuge", region="us", on_demand_hourly=0.12)],
        memory_pages=2048, image_blocks=8192,
    )
    sim, fed = tb.sim, tb.federation
    rng = np.random.default_rng(seed)
    times, prices = spot_price_trace(
        rng, duration=8 * 3600, tick=300, base=0.03,
        spike_prob=0.04, spike_magnitude=5.0)
    market = SpotMarket(sim, tb.clouds["spot-cloud"],
                        SpotPriceProcess(sim, times, prices),
                        reclaim_grace=120.0)
    manager = None
    if migratable:
        manager = MigratableSpotManager(fed)
        manager.attach(market)

    progress = {}  # instance -> seconds of work completed

    def job(sim, inst):
        """Work until done; killed instances lose unfinished progress."""
        progress[inst.vm.name] = 0.0
        step = 60.0
        while progress[inst.vm.name] < JOB_SECONDS:
            yield sim.timeout(step)
            if inst.state is SpotState.RECLAIMED:
                return  # killed: whatever was done is lost
            progress[inst.vm.name] += step

    def launch(sim):
        for i in range(N_INSTANCES):
            inst = yield market.request_spot("debian", bid=BID)
            fed.overlay.register(inst.vm)
            sim.process(job(sim, inst))
    sim.process(launch(sim))
    sim.run(until=9 * 3600)

    finished = sum(1 for p in progress.values() if p >= JOB_SECONDS)
    lost = sum(
        p for name, p in progress.items()
        if p < JOB_SECONDS
    )
    reclaimed = sum(1 for i in market.instances
                    if i.state is SpotState.RECLAIMED)
    rescued = sum(1 for i in market.instances
                  if i.state is SpotState.RESCUED)
    return finished, lost, reclaimed, rescued, manager


def main():
    print(f"{N_INSTANCES} spot instances, {JOB_SECONDS / 3600:.0f}h jobs, "
          f"bid ${BID}/h over a volatile market\n")
    for migratable in (False, True):
        finished, lost, reclaimed, rescued, manager = run(migratable)
        kind = "migratable spot" if migratable else "classic spot"
        print(f"{kind:18}: {finished}/{N_INSTANCES} jobs finished, "
              f"{reclaimed} killed, {rescued} migrated away, "
              f"{lost / 3600:.1f} CPU-hours of work lost")
        if manager is not None:
            for rec in manager.records:
                status = ("rescued -> " + rec.to_cloud if rec.succeeded
                          else "not rescued")
                print(f"    reclamation of {rec.vm_name}: {status}")


if __name__ == "__main__":
    main()
