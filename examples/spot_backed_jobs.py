#!/usr/bin/env python3
"""Spot-backed leases: bid, ride out the spike, keep the savings.

Builds a three-cloud federation whose control plane backs its leases
with bid-priced spot capacity (repro.controlplane.spot).  Two clouds
run volatile spot markets; a third is the checkpoint refuge.  The
cheapest market's price spikes far above every bid mid-run, so the
subsystem has to defend the running jobs inside the reclamation grace
window: live-migrate what fits through the WAN, checkpoint-restart
what has a recent snapshot, requeue the rest with their completed
node-seconds as credit.  Prints each reclamation episode as the
market resolves it, then the per-tenant savings ledger.

Run:  python examples/spot_backed_jobs.py
"""

import numpy as np

from repro.cloud import SpotMarket
from repro.controlplane import ControlPlane, SchedulerConfig, SpotPolicy
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess


def main():
    tb = sky_testbed(
        sites=[SiteSpec("rennes", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.10, region="eu"),
               SiteSpec("sophia", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.12, region="eu"),
               SiteSpec("chicago", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.14, region="us")],
        memory_pages=256, image_blocks=512,
    )
    sim = tb.sim

    # Two spot markets.  Rennes is cheap until it spikes to $0.50/h at
    # t=600s (every sane bid loses); Sophia stays flat, so it doubles
    # as the rescue destination while Rennes reclaims.
    markets = {
        "rennes": SpotMarket(
            sim, tb.clouds["rennes"],
            SpotPriceProcess(sim, np.array([0.0, 600.0, 1800.0]),
                             np.array([0.02, 0.50, 0.02])),
            reclaim_grace=120.0),
        "sophia": SpotMarket(
            sim, tb.clouds["sophia"],
            SpotPriceProcess(sim, np.array([0.0]), np.array([0.03])),
            reclaim_grace=120.0),
    }

    plane = ControlPlane(
        sim, tb.federation, tb.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=600.0),
        spot_markets=markets,
        spot_policy=SpotPolicy(refuge="chicago",
                               checkpoint_interval=120.0),
    ).start()
    plane.register_tenant("alice", weight=1.0)
    plane.register_tenant("bob", weight=2.0)

    jobs = []
    for i in range(6):
        tenant = "alice" if i % 2 == 0 else "bob"
        jobs.append(plane.submit(tenant, n_nodes=2, runtime=900.0,
                                 name=f"{tenant}-{i}"))

    sim.run(until=plane.all_done(jobs))

    print(f"all {len(jobs)} jobs done at t={sim.now:.0f}s\n")
    print(f"{'t(s)':>6} {'vm':>16} {'cloud':>8} {'outcome':>12} detail")
    for ev in plane.spot.resolutions():
        print(f"{ev.time:>6.0f} {ev.vm_name:>16} {ev.cloud:>8} "
              f"{ev.outcome:>12} {ev.detail}")

    s = plane.spot.summary()
    print(f"\nnodes spot-backed: {s['enrolled']}  "
          f"reclaim episodes: {s['reclaim_events']}")
    print("outcomes: " + "  ".join(f"{k}={v}"
                                   for k, v in s["outcomes"].items()))
    print(f"savings vs on-demand: ${s['savings_total']:.3f}")
    for name, saved in sorted(s["savings_by_tenant"].items()):
        print(f"  {name}: ${saved:.3f}")
    for job in jobs:
        print(f"{job.name}: attempts={job.attempts} "
              f"turnaround={job.turnaround:.0f}s")


if __name__ == "__main__":
    main()
