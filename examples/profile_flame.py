#!/usr/bin/env python3
"""Self-profile a cluster migration and export flame graphs.

Re-runs the §III-A Shrinker scenario — a 4-VM cluster live-migrated
between clouds — with BOTH observation layers watching:

* a :class:`~repro.obs.CallbackProfiler` attributing **wall-clock**
  time per kernel callback site (where does the *simulator* spend its
  CPU?), and
* a :class:`~repro.obs.Tracer` whose span tree gives the **sim-time**
  critical path (where does the *simulated system* spend its time?).

Produces, in the output directory:

* ``profile.collapsed``  — wall-clock callback sites, collapsed-stack
  text for ``flamegraph.pl profile.collapsed > profile.svg``;
* ``simtime.collapsed``  — sim-time span self-times, same format;
* ``critical.collapsed`` — critical-path segments only;
* ``profile.speedscope.json`` — both views in one speedscope document;
  drag it onto https://www.speedscope.app;

plus the hottest callback sites and a kernel-health snapshot on stdout.

Run:  python examples/profile_flame.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.hypervisor import (
    Dirtier,
    LiveMigrator,
    MigrationConfig,
    VirtualMachine,
)
from repro.network.units import Mbit
from repro.obs import (
    CallbackProfiler,
    Tracer,
    critical_path,
    dump_speedscope,
    kernel_stats,
    spans_to_collapsed,
)
from repro.shrinker import (
    ClusterMigrationCoordinator,
    RegistryDirectory,
    shrinker_codec_factory,
)
from repro.testbeds import two_cloud_testbed
from repro.workloads import web_server

CLUSTER_SIZE = 4
PAGES = 4096  # 16 MiB per VM
LOOKUP_RTT = 0.02


def main():
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    tb = two_cloud_testbed(wan_bandwidth=500 * Mbit,
                           transatlantic_bandwidth=500 * Mbit,
                           memory_pages=PAGES)
    sim = tb.sim
    tracer = Tracer(sim).install()
    profiler = CallbackProfiler(sim)
    rng = np.random.default_rng(7)

    vms, dst_hosts = [], []
    for i in range(CLUSTER_SIZE):
        vm = VirtualMachine(sim, f"web{i}",
                            web_server().generate_memory(rng, PAGES))
        tb.clouds["rennes"].hosts[i].place(vm)
        vm.boot()
        Dirtier(sim, vm, web_server(), rng)
        tb.federation.overlay.register(vm)
        vms.append(vm)
        dst_hosts.append(tb.clouds["chicago"].hosts[i])

    codec_factory = shrinker_codec_factory(RegistryDirectory(),
                                           lookup_rtt=LOOKUP_RTT)
    migrator = LiveMigrator(sim, tb.scheduler, codec_factory)
    coordinator = ClusterMigrationCoordinator(
        sim, migrator, reconfigurator=tb.federation.reconfigurator)
    stats = sim.run(until=coordinator.migrate_cluster(
        vms, dst_hosts, MigrationConfig()))

    snap = profiler.snapshot()
    snap.dump_collapsed(out_dir / "profile.collapsed")
    (out_dir / "simtime.collapsed").write_text(
        spans_to_collapsed(tracer.spans), encoding="utf-8")
    report = critical_path(tracer)
    (out_dir / "critical.collapsed").write_text(report.to_collapsed(),
                                                encoding="utf-8")
    speedscope_path = out_dir / "profile.speedscope.json"
    dump_speedscope(speedscope_path, profiler=profiler, tracer=tracer,
                    name="cluster-migration")

    print(f"{CLUSTER_SIZE}-VM cluster migration: {stats.duration:.2f} s "
          f"simulated, {snap.events} events dispatched in "
          f"{snap.wall_total:.3f} s of wall clock\n")
    print("hottest callback sites (wall clock):")
    print(snap.format(top=8))
    print(f"\nobs tax: {snap.obs_tax:.4f} s "
          f"({snap.obs_tax / snap.wall_total:.1%} of attributed wall)")

    ks = kernel_stats(sim)
    print(f"\nkernel: backend={ks.backend} events={ks.events_dispatched} "
          f"batches={ks.batches_dispatched} max_batch={ks.max_batch} "
          f"preemptions={ks.preemptions}")
    print(f"\nwrote {out_dir / 'profile.collapsed'}, simtime.collapsed, "
          f"critical.collapsed (flamegraph.pl) and {speedscope_path} "
          f"(https://www.speedscope.app)")


if __name__ == "__main__":
    main()
