#!/usr/bin/env python3
"""Watchtower demo: SLOs, burn-rate alerts, and the health dashboard.

Runs the spot-backed three-cloud scenario from
``examples/spot_backed_jobs.py`` with the watchtower consuming its
metrics live: four objectives (queue wait p95, migration downtime p99,
spot rescue rate, migration throughput floor) are evaluated every 30
simulated seconds with multi-window burn-rate alerting; firing alerts
land on the autonomic trigger bus and as instants in the trace.  At
the end the dashboard (JSON + self-contained HTML) is written to the
output directory.

Run:  python examples/slo_dashboard.py [output-dir]
"""

import sys

import numpy as np

from repro.autonomic import SLOMonitor, TriggerBus
from repro.cloud import SpotMarket
from repro.controlplane import ControlPlane, SchedulerConfig, SpotPolicy
from repro.obs import (
    BurnRatePolicy,
    Objective,
    SLOEngine,
    Tracer,
    dump_dashboard,
    install_kernel_gauges,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess


def build_objectives(engine: SLOEngine) -> None:
    engine.add(Objective(
        name="queue-wait-p95",
        series="queue.wait", aggregate="p95", op="<=", threshold=5.0,
        window=600.0,
        policy=BurnRatePolicy(target=0.95, short_window=60.0,
                              long_window=300.0),
        description="jobs start within 5 s of submission (p95)"))
    engine.add(Objective(
        name="migration-downtime-p99",
        series="migration.downtime", aggregate="p99", op="<=",
        threshold=2.0, window=900.0,
        description="rescue migrations pause guests < 2 s (p99)"))
    engine.add(Objective(
        name="spot-rescue-rate",
        series="spot.episodes.resolved",
        good_series="spot.episodes.rescued",
        aggregate="ratio", op=">=", threshold=0.5, window=900.0,
        policy=BurnRatePolicy(target=0.99, short_window=120.0,
                              long_window=600.0),
        description="≥50% of reclamation episodes rescued in place"))
    engine.add(Objective(
        name="migration-throughput-floor",
        series="transport.throughput{class=migration}",
        aggregate="p50", op=">=", threshold=1e6, window=900.0,
        description="migration flows sustain ≥1 MB/s (p50)"))


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "dashboard-out"

    tb = sky_testbed(
        sites=[SiteSpec("rennes", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.10, region="eu"),
               SiteSpec("sophia", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.12, region="eu"),
               SiteSpec("chicago", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.14, region="us")],
        memory_pages=256, image_blocks=512,
    )
    sim = tb.sim
    markets = {
        "rennes": SpotMarket(
            sim, tb.clouds["rennes"],
            SpotPriceProcess(sim, np.array([0.0, 600.0, 1800.0]),
                             np.array([0.02, 0.50, 0.02])),
            reclaim_grace=120.0),
        "sophia": SpotMarket(
            sim, tb.clouds["sophia"],
            SpotPriceProcess(sim, np.array([0.0]), np.array([0.03])),
            reclaim_grace=120.0),
    }
    plane = ControlPlane(
        sim, tb.federation, tb.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=600.0),
        spot_markets=markets,
        spot_policy=SpotPolicy(refuge="chicago",
                               checkpoint_interval=120.0),
        tracer=Tracer(sim),
    ).start()
    plane.register_tenant("alice", weight=1.0)
    plane.register_tenant("bob", weight=2.0)

    engine = SLOEngine(sim, plane.metrics, interval=30.0).start()
    build_objectives(engine)
    install_kernel_gauges(sim, plane.metrics, interval=30.0)

    bus = TriggerBus()
    SLOMonitor(bus, engine)
    engine.subscribe(lambda a: print(
        f"[t={sim.now:7.0f}s] alert {a.objective.name}: {a.state}"
        + (f" (value={a.value:.3g})" if a.value is not None else "")))

    jobs = []
    for i in range(6):
        tenant = "alice" if i % 2 == 0 else "bob"
        jobs.append(plane.submit(tenant, n_nodes=2, runtime=900.0,
                                 name=f"{tenant}-{i}"))

    sim.run(until=plane.all_done(jobs))
    engine.evaluate()  # final reading at scenario end

    print(f"\nall {len(jobs)} jobs done at t={sim.now:.0f}s\n")
    print(f"{'objective':<28} {'value':>10} {'burn s/l':>12} state")
    for obj in engine.snapshot():
        value = "–" if obj["value"] is None else f"{obj['value']:.3g}"
        burns = f"{obj['burn_short']:.1f}/{obj['burn_long']:.1f}"
        print(f"{obj['name']:<28} {value:>10} {burns:>12} {obj['state']}")

    print(f"\nautonomic triggers: "
          f"{[t.detail['state'] for t in bus.triggers if t.kind == 'slo']}")

    payload = dump_dashboard(plane.metrics, out_dir, slo=engine)
    print(f"\nwrote {out_dir}/dashboard.json and dashboard.html "
          f"({len(payload['series'])} series, "
          f"{len(payload['alerts'])} alerts)")


if __name__ == "__main__":
    main()
