#!/usr/bin/env python3
"""Kill the control plane mid-flight and rebuild it from its event log.

The control plane is event-sourced: every state change — job and lease
transitions, tenant charges, spot enrollments — commits one structured
event to a durable log before anything observes it.  This demo

1. runs a two-tenant workload over a three-cloud federation and
   **crashes the control plane** while jobs are queued, provisioning
   and running (every loop and runner process dies where it stands,
   leases and VMs left dangling);
2. snapshots the event log to ``events.jsonl`` (the only thing a real
   deployment needs to persist) and prints the per-entity tally;
3. **recovers** a fresh plane from the log alone — tenants with their
   exact usage accounting, jobs at their last durable progress, live
   clusters re-attached to new leases — and lets the **reconciler**
   diff desired against observed state to requeue whatever the crash
   stranded;
4. runs the recovered plane to completion and proves the invariants:
   every job COMPLETED, zero leaked leases, and a log that still
   validates (strictly increasing seq, monotone time) across the
   crash boundary.

Run:  python examples/crash_recovery.py [output-dir]
"""

import sys
from collections import Counter

from repro.controlplane import (
    ControlPlane,
    JobState,
    eventlog_of,
    rebuild,
    recover,
    validate_events,
)
from repro.testbeds import SiteSpec, sky_testbed

CRASH_AT = 150.0


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    tb = sky_testbed(
        sites=[SiteSpec(f"c{i}", n_hosts=1, cores_per_host=8,
                        on_demand_hourly=0.10 + 0.02 * i)
               for i in range(3)],
        memory_pages=256, image_blocks=512, seed=11,
    )
    plane = ControlPlane(tb.sim, tb.federation, tb.image_name).start()
    plane.register_tenant("alice", weight=2.0)
    plane.register_tenant("bob")
    jobs = [plane.submit(t, n_nodes=2, runtime=240.0)
            for t in ("alice", "bob") for _ in range(8)]

    tb.sim.run(until=CRASH_AT)
    log = plane.crash()
    by_state = Counter(j.state.value for j in jobs)
    print(f"t={tb.sim.now:.0f}s  CRASH with jobs {dict(by_state)}, "
          f"{len(plane.leases.active_leases())} active leases, "
          f"{len(log)} events committed")

    log_path = f"{out_dir}/events.jsonl"
    log.dump_jsonl(log_path)
    tally = Counter(e.kind for e in log)
    print(f"snapshot -> {log_path}  "
          f"({', '.join(f'{k}:{n}' for k, n in sorted(tally.items()))})")

    state = rebuild(log)
    print(f"replayed seq {state.last_seq}: "
          f"{len(state.jobs)} jobs {state.jobs_by_state()}, "
          f"{len(state.leases)} leases, usage " +
          str({n: round(t.usage, 1) for n, t in state.tenants.items()}))

    plane2 = recover(tb.sim, tb.federation, tb.image_name, log,
                     reconcile_interval=30.0).start()
    healed = plane2.reconciler.reconcile(force=True)
    print(f"t={tb.sim.now:.0f}s  RECOVERED; reconciler healed "
          f"{[f'{d.kind}:{d.entity}' for d in healed] or 'nothing'}")

    jobs2 = list(plane2.queue.jobs.values())
    tb.sim.run(until=plane2.all_done(jobs2))
    final = eventlog_of(tb.sim)
    final.dump_jsonl(log_path)  # full history across the crash boundary
    validate_events(final.events)

    summary = plane2.summary()
    print(f"t={tb.sim.now:.0f}s  DONE  jobs_by_state="
          f"{summary['jobs_by_state']}  last_seq={summary['last_seq']}  "
          f"leaked={summary['leases_leaked']}")
    assert all(j.state is JobState.COMPLETED for j in jobs2)
    assert summary["leases_leaked"] == 0
    print(f"all {len(jobs2)} jobs completed after the crash; "
          f"event log validates end to end ({len(final)} events)")


if __name__ == "__main__":
    main()
