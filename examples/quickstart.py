#!/usr/bin/env python3
"""Quickstart: a sky-computing virtual cluster in ~40 lines.

Builds a two-cloud federation (Rennes + Chicago), provisions an 8-node
virtual cluster spanning both clouds — images propagated with the
chain+CoW fast path, members joined to the ViNe overlay, contextualized
into a cluster — then runs a small MapReduce job across the Atlantic
and prints what happened.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.emr import ElasticMapReduceService
from repro.mapreduce import MapReduceJob
from repro.testbeds import two_cloud_testbed


def main():
    tb = two_cloud_testbed(memory_pages=4096, image_blocks=16384)
    sim = tb.sim

    # A managed MapReduce cluster over the federation.
    service = ElasticMapReduceService(tb.federation, tb.image_name,
                                      rng=np.random.default_rng(1))
    emr = sim.run(until=service.create_cluster(8))
    print(f"provisioned {emr.size}-node cluster in {sim.now:.1f}s "
          f"across {emr.cluster.site_distribution()}")

    # A 32-map wordcount-ish job.
    rng = np.random.default_rng(2)
    job = MapReduceJob(
        "wordcount",
        map_cpu_seconds=rng.uniform(8, 12, size=32),
        reduce_cpu_seconds=np.full(2, 5.0),
        split_bytes=32 * 2**20,
        map_output_bytes=2 * 2**20,
    )
    report = sim.run(until=service.run_job(emr, job))

    print(f"job finished in {report.makespan:.1f}s")
    print(f"  map locality: {report.result.locality_rate:.0%} "
          f"({report.result.local_maps} local / "
          f"{report.result.remote_maps} remote)")
    print(f"  shuffle volume: {report.result.shuffle_bytes / 2**20:.1f} MiB")
    print(f"  compute cost: ${report.compute_cost:.4f}")
    cross = tb.billing.total_cross_site_bytes
    print(f"  inter-cloud traffic (billed): {cross / 2**20:.1f} MiB "
          f"-> ${tb.billing.total_cost():.4f}")

    cost = service.release_cluster(emr)
    print(f"cluster released (total instance cost ${cost:.4f})")


if __name__ == "__main__":
    main()
