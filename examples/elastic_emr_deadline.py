#!/usr/bin/env python3
"""Deadline-driven Elastic MapReduce over federated clouds (paper §IV).

The full service story: a custom image is replicated from the home cloud
to a cheaper partner cloud (content-addressed, so common base blocks
never cross the WAN), a small managed cluster starts the job, and the
deadline policy scales it out from the cheapest cloud when the
projection slips — then scales back in once the job is comfortably
ahead, so the bill tracks need, not peak.

Run:  python examples/elastic_emr_deadline.py
"""

import numpy as np

from repro.cloud import make_image
from repro.emr import DeadlineScalePolicy, ElasticMapReduceService
from repro.sky import CheapestFirst, SingleCloud
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import blast_job


def main():
    tb = sky_testbed(
        sites=[SiteSpec("onprem", region="eu", on_demand_hourly=0.12,
                        n_hosts=10),
               SiteSpec("partner", region="us", on_demand_hourly=0.05,
                        n_hosts=10)],
        memory_pages=2048, image_blocks=16384,
    )
    sim, fed = tb.sim, tb.federation

    # Publish a customized analysis image at the home cloud only, then
    # replicate it so the partner cloud can host scale-out nodes.
    rng = np.random.default_rng(3)
    fed.cloud("onprem").repository.register(
        make_image("genomics", rng, n_blocks=16384,
                   default_memory_pages=2048))
    sim.run(until=fed.replicate_image("genomics", "onprem", "partner"))
    moved = tb.billing.pair_bytes.get(("onprem", "partner"), 0)
    print(f"image replicated to the partner cloud "
          f"({moved / 2**20:.0f} MiB over the WAN after dedup, "
          f"of {16384 * 4096 / 2**20:.0f} MiB logical)")

    service = ElasticMapReduceService(fed, "genomics",
                                      rng=np.random.default_rng(0),
                                      speculative=True)
    emr = sim.run(until=service.create_cluster(
        4, policy=SingleCloud("onprem")))
    print(f"managed cluster up: {emr.cluster.site_distribution()}")

    # Map-only BLAST (each batch writes results directly): the shape
    # where mid-job scale-in is safe and visible.
    job = blast_job(np.random.default_rng(5), n_query_batches=96,
                    mean_batch_seconds=40, db_shard_bytes=4 * 2**20,
                    n_reduces=0)
    deadline = sim.now + 500.0
    policy = DeadlineScalePolicy(check_interval=20, step=4,
                                 scale_in=True)
    report = sim.run(until=service.run_job(
        emr, job, deadline=deadline, scale_policy=policy,
        selection_policy=CheapestFirst()))

    print(f"\njob '{job.name}': {report.result.map_attempts} map attempts, "
          f"makespan {report.makespan:.0f}s")
    print(f"  deadline {'MET' if report.deadline_met else 'MISSED'} "
          f"(budget was {500.0:.0f}s)")
    print(f"  scale events at t={[f'{t:.0f}s' for t in report.scale_events]}")
    print(f"  nodes added {report.nodes_added}, all released by job end "
          f"({report.nodes_released} returned)")
    print(f"  compute cost for this job: ${report.compute_cost:.4f}")
    for name, cloud in fed.clouds.items():
        print(f"    {name}: ${cloud.compute_cost():.4f} billed so far")

    cost = service.release_cluster(emr)
    print(f"cluster released; base-cluster lifetime cost ${cost:.4f}")


if __name__ == "__main__":
    main()
