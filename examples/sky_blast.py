#!/usr/bin/env python3
"""MapReduce BLAST over distributed clouds (paper §II).

Reproduces the sky-computing validation: a virtual Hadoop cluster
spanning Grid'5000 (Rennes, Sophia) and FutureGrid (Chicago, San Diego)
runs a BLAST job, compared against the same cluster confined to one
cloud.  Then demonstrates the Hadoop elasticity extension: nodes added
mid-job shorten the makespan.

Run:  python examples/sky_blast.py
"""

import numpy as np

from repro.mapreduce import JobTracker
from repro.sky import Balanced, SingleCloud
from repro.testbeds import sky_testbed
from repro.workloads import blast_job


def run_blast(policy, n_nodes=16, grow_mid_job=0):
    tb = sky_testbed(memory_pages=2048, image_blocks=16384)
    sim = tb.sim
    cluster = sim.run(until=tb.federation.create_virtual_cluster(
        tb.image_name, n_nodes, policy=policy))
    jt = JobTracker(sim, tb.scheduler, rng=np.random.default_rng(0))
    for vm in cluster:
        jt.add_tracker(vm)

    job = blast_job(np.random.default_rng(5), n_query_batches=96,
                    mean_batch_seconds=60, db_shard_bytes=8 * 2**20)
    proc = jt.submit(job)

    if grow_mid_job:
        def grower(sim):
            yield sim.timeout(120)
            new = yield cluster.grow(grow_mid_job)
            for vm in new:
                jt.add_tracker(vm)
        sim.process(grower(sim))

    result = sim.run(until=proc)
    return result, cluster, tb


def main():
    single, _, _ = run_blast(SingleCloud("rennes"))
    sky, cluster, tb = run_blast(Balanced())
    overhead = sky.makespan / single.makespan - 1

    print("BLAST, 96 query batches (~60s each), 16 worker nodes\n")
    print(f"  single cloud (rennes):   makespan {single.makespan:7.1f}s  "
          f"locality {single.locality_rate:.0%}")
    print(f"  sky (4 clouds, {cluster.site_distribution()}):")
    print(f"                           makespan {sky.makespan:7.1f}s  "
          f"locality {sky.locality_rate:.0%}")
    print(f"  multi-cloud overhead: {overhead:+.1%} "
          "(embarrassingly parallel -> near zero)")
    print(f"  billed inter-cloud traffic: "
          f"{tb.billing.total_cross_site_bytes / 2**20:.1f} MiB")

    elastic, _, _ = run_blast(Balanced(), n_nodes=8, grow_mid_job=8)
    static, _, _ = run_blast(Balanced(), n_nodes=8)
    print(f"\nelasticity (paper's Hadoop extension):")
    print(f"  8 nodes static:          makespan {static.makespan:7.1f}s")
    print(f"  8 nodes +8 at t=120s:    makespan {elastic.makespan:7.1f}s "
          f"({1 - elastic.makespan / static.makespan:.0%} faster)")


if __name__ == "__main__":
    main()
