#!/usr/bin/env python3
"""The full autonomic loop (paper §III-B + §III-C).

A 16-VM virtual cluster spans two clouds with its communication groups
interleaved (the worst placement).  The hypervisor-level sniffer infers
the traffic matrix transparently — validated against library-level
ground truth — the communication-aware planner computes a better
placement, and the adaptation engine executes it with inter-cloud live
migrations (Shrinker + ViNe reconfiguration), while a TCP connection
between two VMs survives the move.

Run:  python examples/autonomic_federation.py
"""

import numpy as np

from repro.autonomic import AdaptationEngine, cross_traffic
from repro.network import Connection
from repro.patterns import (
    GroundTruthRecorder,
    HypervisorSniffer,
    cosine_similarity,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import run_pattern


def main():
    tb = sky_testbed(
        sites=[SiteSpec("rennes", region="eu", n_hosts=12),
               SiteSpec("chicago", region="us", n_hosts=12)],
        memory_pages=2048, image_blocks=8192,
    )
    sim, fed = tb.sim, tb.federation

    cluster = sim.run(until=fed.create_virtual_cluster(tb.image_name, 16))
    vms = cluster.vms
    print(f"cluster up: {cluster.site_distribution()}")

    # Interleaved communication groups: evens chat with evens, odds with
    # odds — Balanced placement split both groups across the Atlantic.
    pattern = [
        (i, j, 4e6 if (i % 2) == (j % 2) else 1e5)
        for i in range(16) for j in range(16) if i != j
    ]

    # Transparent detection vs invasive ground truth (SIII-C).
    truth = GroundTruthRecorder()
    sniffer = HypervisorSniffer(tb.scheduler, tags={"app"})
    sim.run(until=run_pattern(sim, tb.scheduler, vms, pattern, rounds=5,
                              recorder=truth))
    sim_cos = cosine_similarity(sniffer.matrix, truth.matrix)
    print(f"traffic matrix detected at the hypervisor: cosine similarity "
          f"to instrumented ground truth = {sim_cos:.3f}")

    # A long-lived TCP connection that must survive the adaptation.
    conn = Connection(sim, tb.scheduler, fed.overlay, vms[0], vms[2],
                      rto_budget=60.0)

    engine = AdaptationEngine(fed)
    before = cross_traffic(engine.current_assignment(vms), sniffer.matrix)
    report = sim.run(until=engine.adapt(vms, sniffer.matrix))
    print(f"\nadaptation: {report.migrations} inter-cloud live migrations")
    print(f"  cross-cloud traffic over the observation window: "
          f"{report.cut_before / 2**20:.1f} MiB -> "
          f"{report.cut_after / 2**20:.1f} MiB "
          f"({1 - report.cut_after / max(report.cut_before, 1):.0%} less)")
    print(f"  new placement: {cluster.site_distribution()}")

    # Prove the connection survived the migrations (ViNe reconfig).
    done = []

    def talk(sim):
        n = yield conn.send(1e6)
        done.append(n)

    sim.process(talk(sim))
    sim.run()
    print(f"\nTCP connection vm0->vm2 across the adaptation: "
          f"{'ALIVE' if conn.alive and done else 'BROKEN'} "
          f"(max stall {conn.max_stall * 1000:.0f} ms)")

    # Re-measure actual traffic after adaptation.
    sniffer2 = HypervisorSniffer(tb.scheduler, tags={"app"})
    billed_before = tb.billing.total_cross_site_bytes
    sim.run(until=run_pattern(sim, tb.scheduler, vms, pattern, rounds=5))
    billed = tb.billing.total_cross_site_bytes - billed_before
    print(f"re-ran the workload (5 rounds): {billed / 2**20:.1f} MiB "
          f"billed cross-cloud (was {before / 2**20:.1f} MiB)")


if __name__ == "__main__":
    main()
