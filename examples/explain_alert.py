#!/usr/bin/env python3
"""Cross-signal alert forensics: from a firing SLO to its exemplar traces.

A spot price spike reclaims every node on the cheap cloud with rescue
disabled, so each reclamation episode ends in a requeue and the
spot-rescue-rate SLO collapses to zero.  The burn-rate alert walks
pending → firing → resolved; then :func:`repro.obs.explain` assembles
the answer to "why did this fire?" from every signal family at once:

* the **metric exemplars** captured on the breaching series (each one
  carries the trace id that was active when the sample was recorded),
* the **exemplar traces** themselves, read back from the tracer with
  per-trace critical paths,
* the **eventlog transitions** inside the alert window (the requeues
  that sank the ratio),
* a **kernel snapshot** for the run context.

The report is written as ``explain-<objective>.json`` (machine) and
``explain-<objective>.md`` (human) plus the dashboard with its
drill-down panel.

Run:  python examples/explain_alert.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.cloud import SpotMarket
from repro.controlplane import ControlPlane, SchedulerConfig, SpotPolicy
from repro.obs import (
    BurnRatePolicy,
    Objective,
    SLOEngine,
    Tracer,
    dump_dashboard,
    explain,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess


def build_scenario():
    """Two-cloud federation; the cheap cloud's spot market spikes above
    every bid at t=600 and rescue is disabled."""
    tb = sky_testbed(
        sites=[SiteSpec("volatile", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.10, region="eu"),
               SiteSpec("steady", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.12, region="eu")],
        memory_pages=64, image_blocks=128,
    )
    sim = tb.sim
    markets = {
        "volatile": SpotMarket(
            sim, tb.clouds["volatile"],
            SpotPriceProcess(sim, np.array([0.0, 600.0, 1500.0]),
                             np.array([0.02, 0.50, 0.02])),
            reclaim_grace=60.0),
    }
    plane = ControlPlane(
        sim, tb.federation, tb.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=3000.0),
        spot_markets=markets,
        spot_policy=SpotPolicy(rescue=False, refuge=None),
        tracer=Tracer(sim),
    ).start()
    plane.register_tenant("acme", weight=1.0)
    jobs = [plane.submit("acme", n_nodes=2, runtime=2000.0,
                         name=f"job-{i}") for i in range(3)]
    return tb, plane, jobs


def main():
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "explain-out")
    out_dir.mkdir(parents=True, exist_ok=True)

    tb, plane, jobs = build_scenario()
    engine = SLOEngine(tb.sim, plane.metrics, interval=45.0).start()
    engine.add(Objective(
        name="spot-rescue-rate",
        series="spot.episodes.resolved",
        good_series="spot.episodes.rescued",
        aggregate="ratio", op=">=", threshold=0.5, window=240.0,
        policy=BurnRatePolicy(target=0.99, short_window=60.0,
                              long_window=300.0, fire_burn=1.0,
                              resolve_burn=0.5),
        description="≥50% of terminal reclamation episodes saved in place"))
    engine.subscribe(lambda a: print(
        f"[t={tb.sim.now:6.0f}s] alert {a.objective.name}: {a.state}"))

    tb.sim.run(until=1100.0)

    assert engine.alerts, "scenario produced no alert"
    alert = engine.alerts[0]
    report = explain(alert, plane.metrics)
    start, end = report.window
    print(f"\nalert {alert.objective.name} "
          f"(pending {alert.pending_at:.0f}s, fired {alert.fired_at:.0f}s, "
          f"resolved {alert.resolved_at:.0f}s)")
    print(f"window [{start:.0f}s, {end:.0f}s]: "
          f"{len(report.exemplars)} exemplars, "
          f"{len(report.traces)} exemplar traces, "
          f"{len(report.transitions)} transitions")
    for trace in report.traces:
        cp = trace["critical_path"]
        print(f"  trace {trace['trace_id']} {trace['root']!r} "
              f"[{trace['status']}] critical path {cp['total']:.1f}s")
    print(f"transition census: {report.transition_census}")

    stem = out_dir / f"explain-{alert.objective.name}"
    stem.with_suffix(".json").write_text(report.to_json(),
                                         encoding="utf-8")
    stem.with_suffix(".md").write_text(report.to_markdown(),
                                       encoding="utf-8")
    dump_dashboard(plane.metrics, out_dir, slo=engine)
    print(f"\nwrote {stem}.json, {stem}.md and {out_dir}/dashboard.*"
          f" (drill-down panel included)")


if __name__ == "__main__":
    main()
