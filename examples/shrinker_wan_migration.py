#!/usr/bin/env python3
"""Shrinker: live-migrate a virtual cluster across a WAN (paper §III-A).

Migrates an 8-VM web-server cluster from Rennes to Chicago over a
1 Gbit/s link (the Grid'5000 regime of the paper's experiments), twice:
once with the raw KVM-style pre-copy protocol, once with Shrinker's
content-based addressing (one shared destination registry, so inter-VM
duplicates cross the WAN once).  Prints aggregate migration time, wire
bytes and downtime.  Note the paper's asymmetry reproduced here: the
*time* saving trails the *bandwidth* saving because hashing pages costs
CPU in the migration path.

Run:  python examples/shrinker_wan_migration.py
"""

import numpy as np

from repro.hypervisor import (
    Dirtier,
    LiveMigrator,
    MigrationConfig,
    VirtualMachine,
)
from repro.network.units import Mbit
from repro.shrinker import (
    ClusterMigrationCoordinator,
    RegistryDirectory,
    shrinker_codec_factory,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import web_server

CLUSTER_SIZE = 8
PAGES = 16384  # 64 MiB per VM


def migrate_cluster(use_shrinker: bool):
    tb = sky_testbed(
        sites=[SiteSpec("rennes", region="eu"),
               SiteSpec("chicago", region="us")],
        wan_bandwidth=1000 * Mbit,
        transatlantic_bandwidth=1000 * Mbit,
    )
    sim = tb.sim
    profile = web_server()
    rng = np.random.default_rng(7)

    vms, dst_hosts = [], []
    for i in range(CLUSTER_SIZE):
        vm = VirtualMachine(sim, f"web{i}",
                            profile.generate_memory(rng, PAGES))
        tb.clouds["rennes"].hosts[i % 8].place(vm)
        vm.boot()
        Dirtier(sim, vm, profile, rng)
        vms.append(vm)
        dst_hosts.append(tb.clouds["chicago"].hosts[i % 8])

    if use_shrinker:
        codec_factory = shrinker_codec_factory(RegistryDirectory())
        migrator = LiveMigrator(sim, tb.scheduler, codec_factory)
    else:
        migrator = LiveMigrator(sim, tb.scheduler)
    coordinator = ClusterMigrationCoordinator(sim, migrator)
    stats = sim.run(until=coordinator.migrate_cluster(
        vms, dst_hosts, MigrationConfig()))
    for vm in vms:
        vm.stop()
    return stats


def main():
    raw = migrate_cluster(use_shrinker=False)
    shr = migrate_cluster(use_shrinker=True)

    print(f"{CLUSTER_SIZE}-VM web-server cluster, 64 MiB RAM each, "
          f"1 Gbit/s WAN\n")
    print(f"{'':24}{'baseline':>14}{'shrinker':>14}")
    print(f"{'migration time (s)':24}{raw.duration:>14.1f}"
          f"{shr.duration:>14.1f}")
    print(f"{'WAN bytes (MiB)':24}{raw.total_wire_bytes / 2**20:>14.1f}"
          f"{shr.total_wire_bytes / 2**20:>14.1f}")
    print(f"{'max downtime (ms)':24}{raw.max_downtime * 1000:>14.1f}"
          f"{shr.max_downtime * 1000:>14.1f}")
    time_saving = 1 - shr.duration / raw.duration
    bw_saving = 1 - shr.total_wire_bytes / raw.total_wire_bytes
    print(f"\nShrinker saved {bw_saving:.0%} of WAN traffic and "
          f"{time_saving:.0%} of migration time")
    print("(paper: 30-40% bandwidth, ~20% time for single VMs; a whole"
          " cluster's\n concurrent flows make the WAN the bottleneck, so "
          "time tracks bandwidth here;\n benchmarks/bench_shrinker.py "
          "sweeps both regimes)")


if __name__ == "__main__":
    main()
