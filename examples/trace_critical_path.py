#!/usr/bin/env python3
"""Trace a Shrinker cluster migration and analyze its critical path.

Re-runs the §III-A scenario — a 4-VM web-server cluster live-migrated
from Rennes to Chicago with content-based addressing and ViNe overlay
reconfiguration — with the causal tracer installed.  Produces:

* ``trace.json`` — Chrome trace-event JSON; open it at
  https://ui.perfetto.dev (or chrome://tracing) to see every migration
  phase, pre-copy round, dedup lookup and WAN transfer on a timeline;
* ``spans.jsonl`` — one structured span per line for offline analysis;
* a critical-path report on stdout: the dominant chain of spans that
  determined the end-to-end time, attributed per phase.

Run:  python examples/trace_critical_path.py [output-dir]
"""

import sys

import numpy as np

from repro.hypervisor import (
    Dirtier,
    LiveMigrator,
    MigrationConfig,
    VirtualMachine,
)
from repro.network.units import Mbit
from repro.obs import Tracer, critical_path
from repro.shrinker import (
    ClusterMigrationCoordinator,
    RegistryDirectory,
    shrinker_codec_factory,
)
from repro.testbeds import two_cloud_testbed
from repro.workloads import web_server

CLUSTER_SIZE = 4
PAGES = 4096  # 16 MiB per VM
LOOKUP_RTT = 0.02  # WAN round-trip per batched dedup digest query


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    tb = two_cloud_testbed(wan_bandwidth=500 * Mbit,
                           transatlantic_bandwidth=500 * Mbit,
                           memory_pages=PAGES)
    sim = tb.sim
    tracer = Tracer(sim).install()
    profile = web_server()
    rng = np.random.default_rng(7)

    vms, dst_hosts = [], []
    for i in range(CLUSTER_SIZE):
        vm = VirtualMachine(sim, f"web{i}",
                            profile.generate_memory(rng, PAGES))
        tb.clouds["rennes"].hosts[i].place(vm)
        vm.boot()
        Dirtier(sim, vm, profile, rng)
        tb.federation.overlay.register(vm)
        vms.append(vm)
        dst_hosts.append(tb.clouds["chicago"].hosts[i])

    codec_factory = shrinker_codec_factory(RegistryDirectory(),
                                           lookup_rtt=LOOKUP_RTT)
    migrator = LiveMigrator(sim, tb.scheduler, codec_factory)
    coordinator = ClusterMigrationCoordinator(
        sim, migrator, reconfigurator=tb.federation.reconfigurator)
    stats = sim.run(until=coordinator.migrate_cluster(
        vms, dst_hosts, MigrationConfig()))

    chrome_path = f"{out_dir}/trace.json"
    jsonl_path = f"{out_dir}/spans.jsonl"
    tracer.dump_chrome_trace(chrome_path)
    tracer.dump_jsonl(jsonl_path)

    report = critical_path(tracer)
    print(f"{CLUSTER_SIZE}-VM cluster migration: {stats.duration:.2f} s, "
          f"{stats.total_wire_bytes / 2**20:.1f} MiB on the wire, "
          f"{stats.bandwidth_saving:.0%} dedup saving")
    print(f"{len(tracer.spans)} spans -> {chrome_path} "
          f"(open in https://ui.perfetto.dev) and {jsonl_path}\n")

    print("critical path by phase:")
    for phase, seconds in sorted(report.by_attribute("phase").items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {phase:16}{seconds:8.3f} s"
              f"  ({seconds / report.total:6.1%})")
    print(f"  {'total':16}{report.total:8.3f} s\n")

    print("dominant chain (top spans):")
    for name, seconds in list(report.by_name().items())[:8]:
        print(f"  {name:24}{seconds:8.3f} s")


if __name__ == "__main__":
    main()
