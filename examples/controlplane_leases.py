#!/usr/bin/env python3
"""Multi-tenant control plane: queue -> fair share -> leases -> healing.

Builds a three-cloud federation and runs its control plane like a small
batch service: two tenants (one with double weight) submit a burst of
jobs, the fair-share scheduler leases virtual clusters for them across
the clouds, a failure injector kills VMs mid-run, and the health
monitor replaces the dead nodes (or requeues the job when its master
dies).  Prints the schedule as it happens and the final accounting.

Run:  python examples/controlplane_leases.py
"""

import numpy as np

from repro.controlplane import ControlPlane, FailureInjector, SchedulerConfig
from repro.testbeds import SiteSpec, sky_testbed


def main():
    tb = sky_testbed(
        sites=[SiteSpec("rennes", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.10, region="eu"),
               SiteSpec("sophia", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.12, region="eu"),
               SiteSpec("chicago", n_hosts=2, cores_per_host=8,
                        on_demand_hourly=0.14, region="us")],
        memory_pages=1024, image_blocks=2048,
    )
    sim = tb.sim

    plane = ControlPlane(
        sim, tb.federation, tb.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=300.0,
                               max_attempts=10),
        heal_policy="replace",
    ).start()
    plane.register_tenant("alice", weight=1.0)
    plane.register_tenant("bob", weight=2.0)   # double fair share

    # A burst of rigid jobs plus one malleable job that can soak up
    # idle capacity once the queue drains.
    jobs = []
    for i in range(8):
        tenant = "alice" if i % 2 == 0 else "bob"
        jobs.append(plane.submit(tenant, n_nodes=4, runtime=120.0,
                                 name=f"{tenant}-{i}"))
    jobs.append(plane.submit("alice", n_nodes=4, runtime=240.0,
                             min_nodes=2, max_nodes=12, name="alice-wide"))

    # Kill leased VMs now and then; the health monitor grows
    # replacements into the affected clusters.
    FailureInjector(sim, plane.leases, rng=np.random.default_rng(3),
                    rate=1 / 500.0)

    sim.run(until=plane.all_done(jobs))

    print(f"all {len(jobs)} jobs done at t={sim.now:.0f}s\n")
    print(f"{'job':>12} {'tenant':>7} {'wait(s)':>8} {'turnaround(s)':>14}")
    for job in jobs:
        print(f"{job.name:>12} {job.tenant:>7} {job.wait_time:>8.0f} "
              f"{job.turnaround:>14.0f}")

    s = plane.summary()
    print(f"\nleases granted: {s['leases']}  expired: {s['leases_expired']}"
          f"  leaked: {s['leases_leaked']}")
    print(f"heal events: {s['heal_events']}  requeued: {s['requeued']}")
    for name, usage in s["usage_by_tenant"].items():
        print(f"  {name}: {usage:.0f} node-seconds charged")
    depths = plane.metrics.series("queue.depth")
    print(f"peak queue depth: {depths.maximum():.0f}")


if __name__ == "__main__":
    main()
