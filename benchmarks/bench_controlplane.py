"""CONTROL PLANE — multi-tenant scheduling at the paper's scale.

Paper §II targets "dynamic computing infrastructures over distributed
clouds" serving real user communities: many tenants submitting many
jobs against a federation of modest IaaS sites.  This bench drives the
control plane (queue → fair-share scheduler → leases → self-healing)
through two scenarios:

1. *Throughput*: 1000 jobs from three weighted tenants over a 3-cloud
   federation, run to completion twice — the two runs must produce
   identical schedules (determinism is what makes the simulator a
   measurement instrument).
2. *Self-healing*: the same federation with a Poisson VM killer; every
   job must still finish and every torn-down lease must have returned
   its capacity (zero leaks).

Metric trajectories (queue depth, lease utilization, completions) are
exported with ``MetricsRecorder.to_dict`` / ``dump_csv`` to
``BENCH_controlplane.{json,csv}`` beside this file.
"""

import time
from pathlib import Path

import numpy as np

from repro.controlplane import ControlPlane, FailureInjector, SchedulerConfig
from repro.testbeds import SiteSpec, sky_testbed

from _meta import write_payload
from _tables import fmt, print_table

N_JOBS = 1000
TENANTS = (("alice", 1.0), ("bob", 2.0), ("carol", 1.0))
HERE = Path(__file__).resolve().parent
ROOT = HERE.parent  # BENCH_* artifacts live at the repo root


def build_plane(n_hosts=4, cores=16, heal_policy="replace",
                max_attempts=5):
    testbed = sky_testbed(
        sites=[SiteSpec(f"c{i}", n_hosts=n_hosts, cores_per_host=cores,
                        on_demand_hourly=0.10 + 0.02 * i,
                        region="eu" if i < 2 else "us")
               for i in range(3)],
        memory_pages=256, image_blocks=512,
    )
    plane = ControlPlane(
        testbed.sim, testbed.federation, testbed.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=600.0,
                               max_attempts=max_attempts),
        heal_policy=heal_policy,
    ).start()
    for name, weight in TENANTS:
        plane.register_tenant(name, weight=weight)
    return testbed, plane


def submit_workload(plane, n_jobs, seed=123):
    """A seeded mixed workload: mostly small jobs, a few wide ones."""
    rng = np.random.default_rng(seed)
    names = [name for name, _ in TENANTS]
    jobs = []
    for i in range(n_jobs):
        tenant = names[int(rng.integers(len(names)))]
        n_nodes = int(rng.choice([1, 1, 2, 2, 4, 8]))
        runtime = float(rng.integers(30, 121))
        jobs.append(plane.submit(tenant, n_nodes=n_nodes, runtime=runtime,
                                 priority=int(rng.integers(3)),
                                 name=f"w{i}"))
    return jobs


def run_throughput(n_jobs=N_JOBS):
    wall = time.time()
    testbed, plane = build_plane()
    jobs = submit_workload(plane, n_jobs)
    sim = testbed.sim
    sim.run(until=plane.all_done(jobs))
    summary = plane.summary()
    assert summary["completed"] == n_jobs, summary
    assert plane.leases.leaked() == []
    order = [(j.name, j.started_at, j.finished_at) for j in jobs]
    waits = {name: [j.wait_time for j in jobs if j.tenant == name]
             for name, _ in TENANTS}
    return {
        "summary": summary,
        "order": order,
        "makespan": sim.now,
        "throughput": n_jobs / sim.now,
        "mean_wait": {n: sum(w) / len(w) for n, w in waits.items()},
        "metrics": plane.metrics,
        "wall_s": time.time() - wall,
    }


def run_healing(n_jobs=300, failure_rate=1 / 400.0):
    wall = time.time()
    testbed, plane = build_plane(heal_policy="replace", max_attempts=10)
    sim = testbed.sim
    injector = FailureInjector(sim, plane.leases,
                               rng=np.random.default_rng(7),
                               rate=failure_rate)
    jobs = submit_workload(plane, n_jobs, seed=456)
    sim.run(until=plane.all_done(jobs))
    injector.stop()
    summary = plane.summary()
    clouds = testbed.federation.clouds.values()
    return {
        "summary": summary,
        "killed": len(injector.killed),
        "leaked": plane.leases.leaked(),
        "stranded": sum(len(c.instances) for c in clouds),
        "makespan": sim.now,
        "wall_s": time.time() - wall,
    }


def test_throughput_1000_jobs_deterministic(benchmark):
    first = benchmark.pedantic(run_throughput, rounds=1, iterations=1)
    second = run_throughput()

    # Same seed, same workload -> bit-identical schedule and accounting.
    assert first["order"] == second["order"]
    assert first["summary"] == second["summary"]

    s = first["summary"]
    rows = [
        ("jobs completed", s["completed"]),
        ("makespan (sim s)", fmt(first["makespan"], 0)),
        ("throughput (jobs/sim s)", fmt(first["throughput"], 2)),
        ("mean wait (s)", fmt(s["mean_wait"], 1)),
        ("requeued", s["requeued"]),
        ("leases granted", s["leases"]),
        ("wall (s)", fmt(first["wall_s"], 1)),
    ]
    print_table("CONTROL PLANE: 1000 jobs, 3 tenants, 3 clouds",
                ["metric", "value"], rows)
    # Everybody's jobs finish, so total usage is workload-determined;
    # the weight shows up as service order: bob (weight 2) waits less
    # than the weight-1 tenants.  Exact share proportions are covered
    # by the property test.
    wait = first["mean_wait"]
    assert wait["bob"] < wait["alice"]
    assert wait["bob"] < wait["carol"]

    # Export the trajectories for plotting / regression diffing.
    exported = first["metrics"].to_dict()
    write_payload("controlplane", {"series": exported}, indent=1)
    rows_written = first["metrics"].dump_csv(
        ROOT / "BENCH_controlplane.csv",
        names=["queue.depth", "lease.utilization", "jobs.completed"],
    )
    assert rows_written > 0
    assert set(exported) >= {"queue.depth", "lease.utilization",
                             "jobs.completed", "job.turnaround"}


def test_self_healing_run_loses_nothing(benchmark):
    stats = benchmark.pedantic(run_healing, rounds=1, iterations=1)
    s = stats["summary"]

    rows = [
        ("jobs completed", s["completed"]),
        ("jobs failed", s["failed"]),
        ("VMs killed", stats["killed"]),
        ("heal events", s["heal_events"]),
        ("jobs requeued", s["requeued"]),
        ("leases expired", s["leases_expired"]),
        ("makespan (sim s)", fmt(stats["makespan"], 0)),
        ("wall (s)", fmt(stats["wall_s"], 1)),
    ]
    print_table("CONTROL PLANE: self-healing under Poisson VM failures",
                ["metric", "value"], rows)

    assert stats["killed"] > 0, "injector never fired; rate too low"
    assert s["completed"] == 300 and s["failed"] == 0
    # The acceptance bar: zero leaked leases, zero stranded instances —
    # every expired or healed lease returned its capacity to its cloud.
    assert stats["leaked"] == []
    assert stats["stranded"] == 0
