"""PROFILER OVERHEAD — what self-observation costs the hot path.

PR 8 put two hooks into the kernel's batch-dispatch loop: one
``_enabled`` attribute read per *batch* (the :data:`NULL_PROFILER`
path) and a run-length-folded wall-clock attribution path when a
:class:`~repro.obs.CallbackProfiler` is enabled.  This bench prices
both against the drain scenario of ``bench_kernel`` (the PR 7
headline shape: a tick storm at the head of a huge armed-decoy mass),
on both queue backends:

``reference``
    The pre-hook dispatch loop, reconstructed verbatim in a
    :class:`Simulator` subclass — the PR 7 kernel, measured in the
    same process so the A/B excludes machine drift.
``null``
    The shipping loop with the default :data:`NULL_PROFILER`.
    Acceptance: < 2% slower than ``reference`` (< 15% at ci scale,
    where the runs are milliseconds and the threshold is a smoke
    check, not a measurement — cross-commit regressions are caught by
    ``compare.py`` against committed baselines instead).
``enabled``
    A live :class:`CallbackProfiler`.  Acceptance: < 25% slower than
    ``reference`` (< 50% at ci scale).  The run-length fold is what
    makes this possible: ``perf_counter`` costs ~120ns on commodity
    hardware while the calendar drain dispatches every ~350ns, so
    per-event clocking would alone blow the budget.

Measurement methodology — shared machines are *hostile* to a 2%
claim, so three defenses stack:

* the three modes run in ``ROUNDS`` interleaved rounds with the mode
  order **rotated** every round.  Calibration on a burstable host
  showed a systematic position effect (the same code measures ~15%
  slower in one slot of an A/B pair, from allocator state); rotation
  spreads that bias equally over all modes;
* each round's run is kept short (tens of ms) and ``gc.collect()``
  precedes every timed section, so a throttling episode can miss at
  least some rounds entirely;
* per mode the **minimum** wall over all rounds is compared: noise
  only ever adds time, so the minima converge on the true cost while
  means and medians inherit the full throttling spread.  Min-of-40 on
  the calibration host resolved identical-code A/B to within ~2.5%;
  single-shot comparison on the same host was off by up to 50%.

All modes must dispatch identical event counts at identical final
clocks — the profiler may never touch simulated time.

Results land in ``BENCH_profile.json`` at the repo root: overhead
percentages, the enabled run's hottest sites, and the profiler's own
batch accounting.  Set ``KERNEL_BENCH_SCALE=ci`` for the capped smoke
variant.
"""

import gc
import os
import time

from repro.obs import CallbackProfiler
from repro.simkernel import Simulator

from _meta import write_payload
from _tables import fmt, print_table

CI_SCALE = os.environ.get("KERNEL_BENCH_SCALE") == "ci"

if CI_SCALE:
    N_DECOYS = 20_000
    N_TICKERS = 300
    N_TICKS = 40
    MAX_NULL_OVERHEAD = 0.15
    MAX_ENABLED_OVERHEAD = 0.50
    ROUNDS = 12
else:
    N_DECOYS = 100_000
    N_TICKERS = 500
    N_TICKS = 100
    MAX_NULL_OVERHEAD = 0.02
    MAX_ENABLED_OVERHEAD = 0.25
    ROUNDS = 40
ROUNDS = int(os.environ.get("BENCH_PROFILE_ROUNDS", ROUNDS))
DECOY_BASE = 1e9  # far enough that decoys never dispatch


class _Pr7Simulator(Simulator):
    """The dispatch loop exactly as PR 7 shipped it: no profiler check,
    no kernel counters.  Only :meth:`run` differs from the parent."""

    def run(self, until=None):
        from repro.simkernel.core import _stop_simulation
        from repro.simkernel.errors import (EmptySchedule, StopSimulation)
        from repro.simkernel.events import Event, URGENT

        stop_event = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be before now ({self._now})")
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                self.schedule(stop_event, priority=URGENT,
                              delay=at - self._now)
                stop_event.callbacks.append(_stop_simulation)

        queue = self._queue
        batch = []
        try:
            while True:
                batch.clear()
                if not queue.pop_batch(batch):
                    raise EmptySchedule("event queue is empty")
                self._now = batch[0][0]
                self._batch_priority = batch[0][1]
                i, n = 0, len(batch)
                try:
                    while i < n:
                        event = batch[i][3]
                        i += 1
                        if event._descheduled:
                            continue
                        self._preempted = False
                        self._dispatch(event)
                        if self._preempted and i < n:
                            for j in range(i, n):
                                queue.push(batch[j])
                            i = n
                except BaseException:
                    for j in range(i, n):
                        queue.push(batch[j])
                    raise
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise
            if until is not None and not isinstance(until, Event):
                self._now = max(self._now, float(until))
            return None


def _noop(_ev):
    pass


def run_drain(queue, sim_cls=Simulator, profiler=None):
    """The bench_kernel drain shape: pre-armed tick storm over a decoy
    mass, measured from the first pop."""
    sim = sim_cls(queue=queue)
    if profiler is not None:
        profiler.reset()
        profiler.install(sim)
    call_in = sim.call_in
    for i in range(N_DECOYS):
        call_in(DECOY_BASE + i * 1e-3, _noop)
    fired = [0]

    def tick(_ev):
        fired[0] += 1

    for t in range(1, N_TICKS + 1):
        ft = float(t)
        for _ in range(N_TICKERS):
            call_in(ft, tick)
    gc.collect()
    wall = time.perf_counter()
    sim.run(until=N_TICKS + 0.5)
    wall = time.perf_counter() - wall
    return {"wall_s": wall, "events": fired[0], "final_now": sim.now}


def measure(queue):
    """Rotated-order, best-of-``ROUNDS`` walls for the three modes
    (see the module docstring for why rotation + minima)."""
    profiler = CallbackProfiler()
    modes = [
        ("reference", lambda: run_drain(queue, sim_cls=_Pr7Simulator)),
        ("null", lambda: run_drain(queue)),
        ("enabled", lambda: run_drain(queue, profiler=profiler)),
    ]
    walls = {name: [] for name, _ in modes}
    shape = {}
    for r in range(ROUNDS):
        rotation = modes[r % len(modes):] + modes[:r % len(modes)]
        for name, runner in rotation:
            result = runner()
            walls[name].append(result["wall_s"])
            expected = shape.setdefault(
                name, (result["events"], result["final_now"]))
            assert expected == (result["events"], result["final_now"])
    # The profiler may never touch the timeline.
    assert len(set(shape.values())) == 1, shape
    best = {name: min(ws) for name, ws in walls.items()}
    events = shape["reference"][0]
    return {
        "events": events,
        "rounds": ROUNDS,
        "wall_s": best,
        "events_per_sec": {name: events / w for name, w in best.items()},
        "overhead_null_pct": best["null"] / best["reference"] - 1.0,
        "overhead_enabled_pct": best["enabled"] / best["reference"] - 1.0,
    }, profiler


def test_profiler_overhead(benchmark):
    results = {}
    snapshots = {}
    for backend in ("heap", "calendar"):
        if backend == "calendar":
            measured = benchmark.pedantic(measure, args=(backend,),
                                          rounds=1, iterations=1)
        else:
            measured = measure(backend)
        results[backend], profiler = measured
        snapshots[backend] = profiler.snapshot()

    rows = []
    for backend, r in results.items():
        rows.append((backend,
                     fmt(r["wall_s"]["reference"], 3),
                     fmt(r["wall_s"]["null"], 3),
                     fmt(r["wall_s"]["enabled"], 3),
                     f"{r['overhead_null_pct']:+.1%}",
                     f"{r['overhead_enabled_pct']:+.1%}"))
    print_table(
        f"PROFILER OVERHEAD on drain ({N_DECOYS} decoys, "
        f"{N_TICKERS} tickers x {N_TICKS} ticks, best of {ROUNDS})",
        ["backend", "ref wall (s)", "null wall (s)", "prof wall (s)",
         "null ovh", "prof ovh"],
        rows)

    snap = snapshots["calendar"]
    out = {
        "config": {
            "scale": "ci" if CI_SCALE else "full",
            "n_decoys": N_DECOYS,
            "n_tickers": N_TICKERS,
            "n_ticks": N_TICKS,
            "rounds": ROUNDS,
            "max_null_overhead": MAX_NULL_OVERHEAD,
            "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        },
        "backends": results,
        "headline": {
            "overhead_null_pct": results["calendar"]["overhead_null_pct"],
            "overhead_enabled_pct":
                results["calendar"]["overhead_enabled_pct"],
            "enabled_events_per_sec":
                results["calendar"]["events_per_sec"]["enabled"],
        },
        "profile": {
            "top_sites": [s.to_dict() for s in snap.sites[:10]],
            "events": snap.events,
            "batches": snap.batches,
            "kernel_wall_s": snap.kernel_wall,
            "batch_hist": {str(k): v for k, v in snap.batch_hist.items()},
        },
    }
    write_payload("profile", out)

    # Acceptance: the null hook is invisible, the enabled profiler stays
    # inside its budget, and the profiler saw every dispatched tick.
    for backend, r in results.items():
        assert r["overhead_null_pct"] < MAX_NULL_OVERHEAD, (backend, r)
        assert r["overhead_enabled_pct"] < MAX_ENABLED_OVERHEAD, (backend, r)
    assert snap.events >= results["calendar"]["events"]


if __name__ == "__main__":
    class _Shim:
        @staticmethod
        def pedantic(fn, args=(), **_):
            return fn(*args)

    test_profiler_overhead(_Shim())
