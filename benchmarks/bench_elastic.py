"""E4 — runtime cluster resizing (paper §II).

Paper claim: "We also exploited the extension capabilities of Hadoop to
dynamically adjust the virtual cluster size.  This advocates that
execution frameworks supporting resource addition and removal at run
time are suitable to take advantage of the dynamic nature of
distributed cloud computing infrastructure."

Expected shape: nodes added mid-job cut the makespan (close to the
work-conservation bound); nodes removed mid-job cost re-executed tasks
but the job still completes correctly.
"""

import numpy as np

from repro.mapreduce import JobTracker
from repro.testbeds import two_cloud_testbed
from repro.workloads import blast_job

from _tables import print_table


def run(n_start: int, grow_by: int = 0, grow_at: float = 120.0,
        shrink_by: int = 0, shrink_at: float = 120.0,
        graceful: bool = True, seed: int = 5):
    tb = two_cloud_testbed(memory_pages=2048, image_blocks=8192)
    sim = tb.sim
    cluster = sim.run(until=tb.federation.create_virtual_cluster(
        tb.image_name, n_start))
    jt = JobTracker(sim, tb.scheduler, rng=np.random.default_rng(0))
    for vm in cluster:
        jt.add_tracker(vm)
    job = blast_job(np.random.default_rng(seed), n_query_batches=64,
                    mean_batch_seconds=40, db_shard_bytes=4 * 2**20)
    proc = jt.submit(job)

    if grow_by:
        def grower(sim):
            yield sim.timeout(grow_at)
            new = yield cluster.grow(grow_by)
            for vm in new:
                jt.add_tracker(vm)
        sim.process(grower(sim))
    if shrink_by:
        def shrinker(sim):
            yield sim.timeout(shrink_at)
            victims = cluster.workers[:shrink_by]
            drains = [jt.remove_tracker(vm, graceful=graceful)
                      for vm in victims]
            yield sim.all_of(drains)  # let in-flight tasks finish
            tb.federation.shrink_cluster(cluster, victims)
        sim.process(shrinker(sim))

    result = sim.run(until=proc)
    return result


def test_e4_growth_shortens_makespan(benchmark):
    static = run(8)
    grown = benchmark.pedantic(
        run, kwargs={"n_start": 8, "grow_by": 8}, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "static": round(static.makespan, 1),
        "grown": round(grown.makespan, 1),
    })
    assert grown.makespan < static.makespan * 0.85
    # Never better than doubling capacity from t=grow_at onward.
    assert grown.makespan > static.makespan / 2.2


def test_e4_shrink_still_completes(benchmark):
    shrunk = benchmark.pedantic(
        run, kwargs={"n_start": 12, "shrink_by": 4, "graceful": False},
        rounds=1, iterations=1)
    assert shrunk.map_attempts >= 64
    assert shrunk.reexecuted_tasks >= 0
    static = run(12)
    assert shrunk.makespan >= static.makespan * 0.95


def test_e4_summary_table(benchmark):
    def sweep():
        return {
            "8 static": run(8),
            "8 -> 16 at t=120s": run(8, grow_by=8),
            "16 static": run(16),
            "12 static": run(12),
            "12 -> 8 at t=120s (graceful)": run(12, shrink_by=4),
            "12 -> 8 at t=120s (forced)": run(12, shrink_by=4,
                                              graceful=False),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (name, f"{r.makespan:.0f}", r.map_attempts, r.reexecuted_tasks)
        for name, r in results.items()
    ]
    print_table(
        "E4: elastic Hadoop — resizing the virtual cluster mid-job "
        "(BLAST, 64 batches x ~40s)",
        ["scenario", "makespan(s)", "map_attempts", "reexecuted"],
        rows,
    )
    print("shape: growth approaches the bigger static cluster; removal "
          "costs only re-executed tasks")
