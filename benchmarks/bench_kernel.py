"""KERNEL HOT PATH — queue backends, batch dispatch, vectorized timers.

Every scale story (million-job dispatch, HTC runs, serving) bottoms out
in the simkernel event loop, so this bench measures the loop itself in
the regime the flow allocator actually creates: a huge mass of armed
far-future timers (BENCH_flows showed ~1.4M timers for 1300 flows) with
a dense tick storm at the head of the queue.

Four scenarios, each run on both queue backends:

``drain``
    The timer-dominated headline: ``N_TICKERS x N_TICKS`` tick timers
    pre-armed against ``N_DECOYS`` far-future decoys, then drained.
    Same-instant ticks pop as one contiguous batch, so the calendar
    backend pays O(log buckets) per *batch* where the heap pays
    O(log n) per *event*.  Acceptance: calendar sustains >= 1M
    events/sec and >= 3x the heap's wall clock.

``rearm``
    Self-re-arming tickers (every dispatch schedules its successor) —
    the live-flow shape, dominated by event construction rather than
    queue ops, so the backend gap narrows; recorded for transparency.

``vectorized``
    The same homogeneous storm expressed through a
    :class:`~repro.simkernel.TimerBank`: all fire-times live in one
    NumPy array behind a single sentinel event, so each instant costs
    one kernel dispatch + one ``searchsorted`` regardless of how many
    timers fire.

``cancel``
    Lazy cancellation: 70% of armed timers descheduled, forcing the
    >50%-dead compaction path; both backends must dispatch the exact
    survivors.

Determinism is asserted throughout: both backends fire identical event
counts at identical final clocks.  Results land in ``BENCH_kernel.json``
at the repo root.  Set ``KERNEL_BENCH_SCALE=ci`` for the capped smoke
variant (same schema, smaller constants, relaxed thresholds).
"""

import os
import time

import numpy as np

from repro.simkernel import Simulator, TimerBank

from _meta import write_payload
from _tables import fmt, print_table


CI_SCALE = os.environ.get("KERNEL_BENCH_SCALE") == "ci"

if CI_SCALE:
    N_DECOYS = 100_000
    N_TICKERS = 300
    N_TICKS = 60
    N_CANCEL = 40_000
    MIN_EVENTS_PER_SEC = 2e5
    MIN_SPEEDUP = 1.2
else:
    N_DECOYS = 1_000_000
    N_TICKERS = 1000
    N_TICKS = 250
    N_CANCEL = 400_000
    MIN_EVENTS_PER_SEC = 1e6
    MIN_SPEEDUP = 3.0

DECOY_BASE = 1e9  # far enough that decoys never dispatch


def _noop(_ev):
    pass


def _arm_decoys(sim):
    """The pending mass: far-future timers that never fire but sit in
    the queue for the whole run (the armed-flow-timer regime)."""
    call_in = sim.call_in
    for i in range(N_DECOYS):
        call_in(DECOY_BASE + i * 1e-3, _noop)


def run_drain(queue):
    """Pre-armed tick storm: pure pop + batch-dispatch throughput."""
    sim = Simulator(queue=queue)
    _arm_decoys(sim)
    fired = [0]

    def tick(_ev):
        fired[0] += 1

    call_in = sim.call_in
    for t in range(1, N_TICKS + 1):
        ft = float(t)
        for _ in range(N_TICKERS):
            call_in(ft, tick)
    wall = time.perf_counter()
    sim.run(until=N_TICKS + 0.5)
    wall = time.perf_counter() - wall
    return {"wall_s": wall, "events": fired[0], "final_now": sim.now,
            "events_per_sec": fired[0] / wall}


def run_rearm(queue):
    """Self-re-arming tickers: dispatch + event construction combined."""
    sim = Simulator(queue=queue)
    _arm_decoys(sim)
    fired = [0]

    def make_ticker():
        def tick(_ev):
            fired[0] += 1
            if sim.now < N_TICKS - 0.5:
                sim.call_in(1.0, tick)
        return tick

    for _ in range(N_TICKERS):
        sim.call_in(1.0, make_ticker())
    wall = time.perf_counter()
    sim.run(until=N_TICKS + 0.5)
    wall = time.perf_counter() - wall
    return {"wall_s": wall, "events": fired[0], "final_now": sim.now,
            "events_per_sec": fired[0] / wall}


def run_vectorized(queue):
    """The same storm through a TimerBank: one sentinel, array drains."""
    sim = Simulator(queue=queue)
    _arm_decoys(sim)
    bank = TimerBank(sim)
    fired = [0]

    def on_fire(indices, _now):
        fired[0] += indices.size

    delays = np.repeat(np.arange(1, N_TICKS + 1, dtype=float), N_TICKERS)
    bank.arm_array(delays, on_fire)
    wall = time.perf_counter()
    sim.run(until=N_TICKS + 0.5)
    wall = time.perf_counter() - wall
    return {"wall_s": wall, "events": fired[0], "final_now": sim.now,
            "events_per_sec": fired[0] / wall}


def run_cancel(queue):
    """Arm N_CANCEL timers, deschedule 70%, drain the survivors —
    exercises lazy cancellation and the >50%-dead compaction."""
    sim = Simulator(queue=queue)
    fired = [0]

    def tick(_ev):
        fired[0] += 1

    rng = np.random.default_rng(11)
    delays = rng.uniform(1.0, 100.0, N_CANCEL)
    events = [sim.call_in(float(d), tick) for d in delays]
    doomed = rng.random(N_CANCEL) < 0.7
    wall = time.perf_counter()
    for ev, dead in zip(events, doomed):
        if dead:
            ev.deschedule()
    sim.run()
    wall = time.perf_counter() - wall
    return {"wall_s": wall, "events": fired[0], "final_now": sim.now,
            "events_per_sec": fired[0] / wall,
            "cancelled": int(doomed.sum())}


SCENARIOS = [
    ("drain", run_drain),
    ("rearm", run_rearm),
    ("vectorized", run_vectorized),
    ("cancel", run_cancel),
]


def test_kernel_hot_path(benchmark):
    results = {}
    for name, runner in SCENARIOS:
        if name == "drain":
            heap = benchmark.pedantic(runner, args=("heap",),
                                      rounds=1, iterations=1)
        else:
            heap = runner("heap")
        cal = runner("calendar")
        # Determinism: both backends fire the same events and end at
        # the same clock.
        assert cal["events"] == heap["events"], name
        assert cal["final_now"] == heap["final_now"], name
        results[name] = {
            "heap": heap,
            "calendar": cal,
            "speedup_calendar_vs_heap": heap["wall_s"] / cal["wall_s"],
        }

    drain = results["drain"]
    vec = results["vectorized"]
    rows = []
    for name, r in results.items():
        rows.append((name,
                     fmt(r["heap"]["wall_s"], 3),
                     fmt(r["calendar"]["wall_s"], 3),
                     fmt(r["heap"]["events_per_sec"] / 1e6, 2),
                     fmt(r["calendar"]["events_per_sec"] / 1e6, 2),
                     fmt(r["speedup_calendar_vs_heap"], 2) + "x"))
    print_table(
        f"KERNEL HOT PATH ({N_DECOYS} pending decoys, "
        f"{N_TICKERS} tickers x {N_TICKS} ticks)",
        ["scenario", "heap wall (s)", "cal wall (s)",
         "heap Mev/s", "cal Mev/s", "speedup"],
        rows)

    out = {
        "config": {
            "scale": "ci" if CI_SCALE else "full",
            "n_decoys": N_DECOYS,
            "n_tickers": N_TICKERS,
            "n_ticks": N_TICKS,
            "n_cancel": N_CANCEL,
        },
        "scenarios": results,
        "headline": {
            "calendar_events_per_sec": drain["calendar"]["events_per_sec"],
            "speedup_calendar_vs_heap": drain["speedup_calendar_vs_heap"],
            "vectorized_events_per_sec":
                vec["calendar"]["events_per_sec"],
            "speedup_vectorized_calendar_vs_plain_heap":
                heap_over_vec(results),
        },
    }
    write_payload("kernel", out)

    # Acceptance: the calendar backend sustains >= 1M events/sec in the
    # timer-dominated regime at >= 3x the heap's wall clock (relaxed
    # thresholds under KERNEL_BENCH_SCALE=ci).
    assert drain["calendar"]["events_per_sec"] >= MIN_EVENTS_PER_SEC
    assert drain["speedup_calendar_vs_heap"] >= MIN_SPEEDUP
    # The vectorized fast path must beat per-event dispatch outright.
    assert (vec["calendar"]["events_per_sec"]
            > drain["calendar"]["events_per_sec"])


def heap_over_vec(results):
    return (results["drain"]["heap"]["wall_s"]
            / results["vectorized"]["calendar"]["wall_s"])


if __name__ == "__main__":
    class _Shim:
        @staticmethod
        def pedantic(fn, args=(), **_):
            return fn(*args)

    test_kernel_hot_path(_Shim())
