"""TELEMETRY AT SCALE — streaming sink + tail sampler under load.

The tentpole claim of the streaming tracer is that a run of hundreds of
thousands of traced jobs keeps a *bounded* resident span set and a
*deterministic* sampled archive.  This bench proves both with numbers
in ``BENCH_obs_scale.json``:

``stream``
    ``N_TRACES`` two-span traces (a root job + a child work span, with
    a deterministic duration spread, latency spikes, and a sprinkle of
    errors) pushed through a sampling tracer backed by a
    :class:`~repro.obs.NullSpanSink`.  Acceptance: the resident peak
    never exceeds ``MAX_RESIDENT``, span conservation holds
    (archived + resident + dropped == started), and throughput stays
    above the scale's floor.

``determinism``
    The same workload run twice with the same sampler seed into real
    JSONL archives.  Acceptance: the two logs are **byte-identical**
    and every keep-class (error, slow, hash) fired.

Set ``KERNEL_BENCH_SCALE=ci`` for the capped smoke variant: 100k
traced jobs (200k spans) with a relaxed throughput floor — same schema,
same invariants.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.obs import JsonlSpanSink, NullSpanSink, TraceSampler, Tracer
from repro.simkernel import Simulator

from _meta import write_payload
from _tables import fmt, print_table


CI_SCALE = os.environ.get("KERNEL_BENCH_SCALE") == "ci"

if CI_SCALE:
    N_TRACES = 100_000          # the CI floor: >= 100k traced jobs
    MIN_SPANS_PER_SEC = 2e4
else:
    N_TRACES = 500_000          # the million-span run
    MIN_SPANS_PER_SEC = 5e4

MAX_RESIDENT = 1024
KEEP_FRACTION = 0.01
SEED = 9


def _drive(tracer, sim, n_traces):
    """Deterministic two-span traces: duration spread via a Knuth-hash
    ramp, a latency spike every 499th trace, an error every 997th."""
    for i in range(n_traces):
        sim._now = float(i)
        root = tracer.start("job", tenant=f"t{i % 5}")
        child = tracer.start("work", parent=root)
        duration = 0.1 + (i * 2654435761 % 1000) / 2000.0
        if i % 499 == 0:
            duration += 5.0
        sim._now = float(i) + duration
        child.end()
        root.end("error" if i % 997 == 0 else None)


def run_stream():
    """The memory-bound run: sampling tracer over a null sink."""
    sim = Simulator()
    tracer = Tracer(sim, sink=NullSpanSink(),
                    sampler=TraceSampler(keep_fraction=KEEP_FRACTION,
                                         seed=SEED),
                    max_resident=MAX_RESIDENT)
    start = time.perf_counter()
    _drive(tracer, sim, N_TRACES)
    tracer.flush()
    wall = time.perf_counter() - start
    stats = tracer.stats()
    return {
        "wall_s": wall,
        "spans": stats["started"],
        "spans_per_sec": stats["started"] / wall,
        "resident_peak": stats["resident_peak"],
        "archived": stats["archived"],
        "dropped_spans": stats["dropped_spans"],
        "dropped_traces": stats["dropped_traces"],
    }


def run_determinism(tmp: Path):
    """Two same-seed sampled runs into real JSONL archives."""
    logs = []
    kept = None
    for attempt in ("a", "b"):
        sim = Simulator()
        sink = JsonlSpanSink(tmp / f"{attempt}.jsonl")
        tracer = Tracer(sim, sink=sink,
                        sampler=TraceSampler(keep_fraction=KEEP_FRACTION,
                                             seed=SEED),
                        max_resident=MAX_RESIDENT)
        _drive(tracer, sim, N_TRACES)
        tracer.flush()
        sink.close()
        logs.append((tmp / f"{attempt}.jsonl").read_bytes())
        kept = dict(tracer.sampler.kept)
    return {
        "log_bytes": len(logs[0]),
        "log_spans": len(logs[0].splitlines()),
        "log_mismatch": int(logs[0] != logs[1]),
        "kept_error": kept.get("error", 0),
        "kept_slow": kept.get("slow", 0),
        "kept_hash": kept.get("hash", 0),
        "kept_traces": sum(kept.values()),
    }


def test_obs_scale_smoke():
    stream = run_stream()
    with tempfile.TemporaryDirectory() as tmp:
        determinism = run_determinism(Path(tmp))

    print_table(
        f"TELEMETRY AT SCALE ({N_TRACES} traced jobs, "
        f"{'ci' if CI_SCALE else 'full'} scale)",
        ["metric", "value"],
        [("spans", stream["spans"]),
         ("wall (s)", fmt(stream["wall_s"], 2)),
         ("spans/sec", fmt(stream["spans_per_sec"], 0)),
         ("resident peak", stream["resident_peak"]),
         ("archived spans", stream["archived"]),
         ("dropped spans", stream["dropped_spans"]),
         ("sampled log (bytes)", determinism["log_bytes"]),
         ("sampled log mismatch", determinism["log_mismatch"]),
         ("kept error/slow/hash",
          f"{determinism['kept_error']}/{determinism['kept_slow']}"
          f"/{determinism['kept_hash']}")],
    )

    # The resident working set stays bounded for the whole run...
    assert stream["spans"] == 2 * N_TRACES
    assert stream["resident_peak"] <= MAX_RESIDENT
    # ...nothing is lost or double-counted...
    assert (stream["archived"] + stream["dropped_spans"]
            <= stream["spans"])
    assert stream["dropped_traces"] > 0.9 * N_TRACES * (1 - KEEP_FRACTION)
    # ...the sampled archive is reproducible bytes...
    assert determinism["log_mismatch"] == 0
    assert determinism["log_spans"] > 0
    assert determinism["kept_error"] > 0
    assert determinism["kept_slow"] > 0
    assert determinism["kept_hash"] > 0
    # ...and the pipeline is fast enough to leave on.
    assert stream["spans_per_sec"] >= MIN_SPANS_PER_SEC

    write_payload("obs_scale", {
        "config": {
            "scale": "ci" if CI_SCALE else "full",
            "n_traces": N_TRACES,
            "max_resident": MAX_RESIDENT,
            "keep_fraction": KEEP_FRACTION,
            "seed": SEED,
        },
        "stream": stream,
        "determinism": determinism,
    })


if __name__ == "__main__":
    test_obs_scale_smoke()
