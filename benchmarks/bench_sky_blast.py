"""E3 — MapReduce BLAST on virtual clusters spanning clouds (paper §II).

Paper claim: "By executing the MapReduce version of the BLAST
bioinformatics application in virtual Hadoop clusters built on top of
multiple distributed clouds, we showed that it is possible to
efficiently run scientific applications on top of distributed
cloud-based infrastructures."

Expected shape: near-linear speedup with cluster size, and only a small
efficiency penalty (a few percent) for spreading the same cluster over
2-4 clouds — BLAST is embarrassingly parallel.
"""

import numpy as np
import pytest

from repro.mapreduce import JobTracker
from repro.sky import Balanced, SingleCloud
from repro.testbeds import sky_testbed
from repro.workloads import blast_job

from _tables import pct, print_table


def run_blast(n_nodes: int, policy, n_batches: int = 96, seed: int = 5):
    tb = sky_testbed(memory_pages=2048, image_blocks=8192)
    sim = tb.sim
    cluster = sim.run(until=tb.federation.create_virtual_cluster(
        tb.image_name, n_nodes, policy=policy))
    jt = JobTracker(sim, tb.scheduler, rng=np.random.default_rng(0))
    for vm in cluster:
        jt.add_tracker(vm)
    job = blast_job(np.random.default_rng(seed), n_query_batches=n_batches,
                    mean_batch_seconds=60, db_shard_bytes=8 * 2**20)
    result = sim.run(until=jt.submit(job))
    return result, cluster, tb


@pytest.mark.parametrize("n_nodes", [4, 8, 16, 32])
def test_e3_scaling(benchmark, n_nodes):
    result, cluster, tb = benchmark.pedantic(
        run_blast, args=(n_nodes, Balanced()), rounds=1, iterations=1)
    benchmark.extra_info.update({
        "n_nodes": n_nodes,
        "makespan": round(result.makespan, 1),
        "locality": round(result.locality_rate, 3),
    })
    assert result.map_attempts >= 96


def test_e3_multi_cloud_overhead(benchmark):
    def compare():
        single, _, _ = run_blast(16, SingleCloud("rennes"))
        sky, cluster, tb = run_blast(16, Balanced())
        return single, sky, cluster, tb

    single, sky, cluster, tb = benchmark.pedantic(compare, rounds=1,
                                                  iterations=1)
    overhead = sky.makespan / single.makespan - 1
    benchmark.extra_info["overhead"] = round(overhead, 4)
    # Embarrassingly parallel: spanning 4 clouds costs a few percent.
    assert overhead < 0.10


def test_e3_summary_table(benchmark):
    def sweep():
        out = []
        for n in (4, 8, 16, 32):
            single, _, _ = run_blast(n, SingleCloud("rennes"))
            sky, cluster, tb = run_blast(n, Balanced())
            out.append((n, single, sky, cluster,
                        tb.billing.total_cross_site_bytes))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = None
    rows = []
    for n, single, sky, cluster, billed in results:
        if base is None:
            base = (n, sky.makespan)
        # Speedup normalized so the smallest cluster defines 1x per node.
        speedup = base[1] / sky.makespan * base[0]
        rows.append((
            n,
            f"{single.makespan:.0f}",
            f"{sky.makespan:.0f}",
            f"{speedup:.1f}x",
            pct(speedup / n),
            pct(sky.locality_rate),
            f"{billed / 2**20:.0f}",
            str(cluster.site_distribution()),
        ))
    print_table(
        "E3: BLAST (96 batches x ~60s) on sky-computing virtual clusters",
        ["nodes", "t_single(s)", "t_sky(s)", "speedup", "efficiency",
         "locality", "xcloud_MiB", "distribution"],
        rows,
    )
    print("shape: near-linear speedup; multi-cloud ~= single-cloud for "
          "embarrassingly parallel work")


def test_e3b_shuffle_heavy_crossover(benchmark):
    """The paper's caveat, reproduced: a shuffle-heavy sort pays dearly
    for crossing clouds, while BLAST does not."""
    from repro.workloads import terasort_job

    def run_sort(policy):
        # Paper-era inter-testbed links: far slower than the site LANs.
        from repro.network.units import Mbit
        tb = sky_testbed(memory_pages=2048, image_blocks=8192,
                         wan_bandwidth=200 * Mbit,
                         transatlantic_bandwidth=100 * Mbit)
        sim = tb.sim
        cluster = sim.run(until=tb.federation.create_virtual_cluster(
            tb.image_name, 16, policy=policy))
        jt = JobTracker(sim, tb.scheduler, rng=np.random.default_rng(0))
        for vm in cluster:
            jt.add_tracker(vm)
        job = terasort_job(np.random.default_rng(3), n_maps=32,
                           split_bytes=32 * 2**20, n_reduces=8)
        result = sim.run(until=jt.submit(job))
        return result, tb.billing.total_cross_site_bytes

    def sweep():
        single, _ = run_sort(SingleCloud("rennes"))
        sky, billed = run_sort(Balanced())
        return single, sky, billed

    single, sky, billed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    overhead = sky.makespan / single.makespan - 1
    print_table(
        "E3b: shuffle-heavy sort (32 x 32 MiB) vs BLAST on 16 nodes",
        ["placement", "makespan(s)", "shuffle MiB", "xcloud MiB"],
        [("single cloud", f"{single.makespan:.0f}",
          f"{single.shuffle_bytes / 2**20:.0f}", "0"),
         ("4 clouds", f"{sky.makespan:.0f}",
          f"{sky.shuffle_bytes / 2**20:.0f}",
          f"{billed / 2**20:.0f}")],
    )
    print(f"multi-cloud overhead for the sort: {overhead:+.0%} "
          "(vs ~0% for BLAST) — 'embarrassingly parallel applications "
          "are the most suited'")
    # The crossover: sky costs real time for shuffle-heavy work.
    assert overhead > 0.25
