"""Watchtower overhead: instruments, labels, tracing, windowed queries.

Two questions, answered with numbers in ``BENCH_obs.json``:

1. What does observability *cost* the hot paths?  Counter increments
   flat vs. labeled (the labeled path pays a name canonicalization +
   registry lookup per call site), and span creation against a real
   tracer vs. the zero-cost ``NULL_TRACER``.
2. Is the windowed percentile really O(log n) per observation?  An
   operation-count harness feeds comparison-instrumented floats
   through :class:`~repro.obs.windows.SlidingWindow` and proves the
   answers are *identical* to naive full-sort percentiles while the
   per-observation comparison count stays logarithmic in the window,
   not linear in the history.
"""

import math
import time

from repro.metrics import MetricsRecorder
from repro.obs import (
    MemorySpanSink,
    NULL_TRACER,
    NullSpanSink,
    TraceSampler,
    Tracer,
)
from repro.obs.windows import SlidingWindow, _interpolated_percentile
from repro.simkernel import Simulator

from _meta import merge_payload
from _tables import fmt, print_table


N_OPS = 50_000
WINDOW = 512
STREAM = 4096


def _merge_payload(section: str, data: dict) -> None:
    merge_payload("obs", section, data)


def _ns_per_op(fn, n: int) -> float:
    start = time.perf_counter()
    fn(n)
    return (time.perf_counter() - start) / n * 1e9


# -- instrument overhead -------------------------------------------------


def measure_counter_overhead():
    sim = Simulator()
    rec = MetricsRecorder(sim)

    flat = rec.counter("ops")

    def flat_inc(n):
        for _ in range(n):
            flat.inc()

    def labeled_inc(n):
        # The realistic call shape: the site re-resolves the labeled
        # instrument each event (labels vary by tenant at run time).
        for i in range(n):
            rec.counter("ops.labeled",
                        labels={"tenant": "acme", "cloud": "eu"}).inc()

    return {
        "flat_ns": _ns_per_op(flat_inc, N_OPS),
        "labeled_ns": _ns_per_op(labeled_inc, N_OPS),
    }


def measure_span_overhead():
    null_sim = Simulator()

    def null_spans(n):
        for _ in range(n):
            NULL_TRACER.start("op", phase="x").end()

    traced_sim = Simulator()
    tracer = Tracer(traced_sim).install()

    def traced_spans(n):
        for _ in range(n):
            tracer.start("op", phase="x").end()

    null_ns = _ns_per_op(null_spans, N_OPS)
    traced_ns = _ns_per_op(traced_spans, N_OPS)
    assert null_sim.now == traced_sim.now == 0.0
    return {"null_ns": null_ns, "traced_ns": traced_ns,
            "spans_recorded": len(tracer.spans)}


def test_instrument_overhead(benchmark):
    counters = benchmark.pedantic(measure_counter_overhead,
                                  rounds=3, iterations=1)
    spans = measure_span_overhead()
    ratio_labels = counters["labeled_ns"] / counters["flat_ns"]
    ratio_traced = spans["traced_ns"] / max(spans["null_ns"], 1e-9)

    print_table(
        f"WATCHTOWER OVERHEAD ({N_OPS} ops each)",
        ["operation", "ns/op"],
        [("counter.inc (flat)", fmt(counters["flat_ns"], 0)),
         ("counter.inc (labeled, re-resolved)",
          fmt(counters["labeled_ns"], 0)),
         ("span start+end (NULL_TRACER)", fmt(spans["null_ns"], 0)),
         ("span start+end (recording)", fmt(spans["traced_ns"], 0))],
    )
    print(f"labeled/flat = {ratio_labels:.1f}x, "
          f"traced/null = {ratio_traced:.1f}x")

    # Sanity bounds, generous enough for slow CI runners: labels cost
    # a dict + format per call, not orders of magnitude.
    assert ratio_labels < 100.0
    _merge_payload("overhead", {
        "counter_flat_ns": counters["flat_ns"],
        "counter_labeled_ns": counters["labeled_ns"],
        "labeled_over_flat": ratio_labels,
        "span_null_ns": spans["null_ns"],
        "span_traced_ns": spans["traced_ns"],
        "traced_over_null": ratio_traced,
        "n_ops": N_OPS,
    })


# -- streaming sink / tail sampler overhead ------------------------------


def _stream_traces(tracer, sim, n_traces):
    """n_traces two-span traces with deterministic duration spread."""
    for i in range(n_traces):
        sim._now = float(i)
        root = tracer.start("job")
        child = tracer.start("work", parent=root)
        sim._now = float(i) + 0.1 + (i * 2654435761 % 1000) / 2000.0
        child.end()
        root.end()


def measure_sink_overhead():
    n_traces = N_OPS // 2  # two spans per trace -> N_OPS spans
    results = {}

    def run(make_tracer):
        sim = Simulator()
        tracer = make_tracer(sim)
        start = time.perf_counter()
        _stream_traces(tracer, sim, n_traces)
        ns = (time.perf_counter() - start) / N_OPS * 1e9
        return ns, tracer

    def null_spans(n):
        for _ in range(n):
            NULL_TRACER.start("op").end()

    results["null_ns"] = _ns_per_op(null_spans, N_OPS)
    results["classic_ns"], _ = run(lambda sim: Tracer(sim))
    results["stream_full_ns"], full = run(
        lambda sim: Tracer(sim, sink=NullSpanSink(), max_resident=1024))
    results["stream_sampled_ns"], sampled = run(
        lambda sim: Tracer(sim, sink=NullSpanSink(),
                           sampler=TraceSampler(keep_fraction=0.01,
                                                seed=9),
                           max_resident=1024))
    results["full_resident_peak"] = full.stats()["resident_peak"]
    results["sampled_resident_peak"] = sampled.stats()["resident_peak"]
    results["sampled_kept_traces"] = sum(sampled.sampler.kept.values())
    results["sampled_dropped_traces"] = sampled.sampler.dropped

    # Determinism: two same-seed sampled runs, byte-identical archives.
    def archive():
        sim = Simulator()
        sink = MemorySpanSink()
        tracer = Tracer(sim, sink=sink,
                        sampler=TraceSampler(keep_fraction=0.02, seed=5),
                        max_resident=64)
        _stream_traces(tracer, sim, 2000)
        tracer.flush()
        return sink.to_jsonl()

    results["sampled_log_mismatch"] = int(archive() != archive())
    return results


def test_sink_sampler_overhead(benchmark):
    r = benchmark.pedantic(measure_sink_overhead, rounds=3, iterations=1)
    stream_over_classic = r["stream_full_ns"] / r["classic_ns"]
    sampled_over_classic = r["stream_sampled_ns"] / r["classic_ns"]

    print_table(
        f"STREAMING SINK OVERHEAD ({N_OPS} spans each)",
        ["pipeline", "ns/span"],
        [("NULL_TRACER", fmt(r["null_ns"], 0)),
         ("classic (all in memory)", fmt(r["classic_ns"], 0)),
         ("streaming, full keep", fmt(r["stream_full_ns"], 0)),
         ("streaming, 1% tail-sampled", fmt(r["stream_sampled_ns"], 0))],
    )
    print(f"stream/classic = {stream_over_classic:.2f}x, "
          f"sampled/classic = {sampled_over_classic:.2f}x, "
          f"resident peak full={r['full_resident_peak']} "
          f"sampled={r['sampled_resident_peak']}")

    # The bound the memory win must not cost: streaming stays within
    # an order of magnitude of the classic append (generous for CI).
    assert stream_over_classic < 10.0
    assert r["sampled_log_mismatch"] == 0
    assert r["full_resident_peak"] <= 1024
    assert r["sampled_resident_peak"] <= 1024
    _merge_payload("sink", {
        "span_null_ns": r["null_ns"],
        "span_classic_ns": r["classic_ns"],
        "span_stream_full_ns": r["stream_full_ns"],
        "span_stream_sampled_ns": r["stream_sampled_ns"],
        "stream_over_classic": stream_over_classic,
        "sampled_over_classic": sampled_over_classic,
        "full_resident_peak": r["full_resident_peak"],
        "sampled_resident_peak": r["sampled_resident_peak"],
        "sampled_kept_traces": r["sampled_kept_traces"],
        "sampled_dropped_traces": r["sampled_dropped_traces"],
        "sampled_log_mismatch": r["sampled_log_mismatch"],
        "n_spans": N_OPS,
    })


# -- windowed percentile: exactness + O(log n) work ----------------------


class CountingFloat(float):
    """A float that counts order comparisons — the currency of both
    ``bisect.insort`` and ``sorted``."""

    comparisons = 0

    def __lt__(self, other):
        CountingFloat.comparisons += 1
        return float.__lt__(self, other)

    def __gt__(self, other):
        CountingFloat.comparisons += 1
        return float.__gt__(self, other)

    def __le__(self, other):
        CountingFloat.comparisons += 1
        return float.__le__(self, other)

    def __ge__(self, other):
        CountingFloat.comparisons += 1
        return float.__ge__(self, other)


def run_opcount_harness():
    # Deterministic pseudo-random stream (LCG; no RNG dependency).
    seed = 0x2545F491
    values = []
    for _ in range(STREAM):
        seed = (seed * 6364136223846793005 + 1442695040888963407) % 2**64
        values.append(CountingFloat((seed >> 11) / 2**53))

    win = SlidingWindow(maxlen=WINDOW)
    per_observe = []
    mismatches = 0
    naive_comparisons = 0
    queries = 0
    for i, v in enumerate(values):
        before = CountingFloat.comparisons
        win.observe(v)
        per_observe.append(CountingFloat.comparisons - before)
        if i % 64 == 63:
            # Windowed answer vs. the naive full-sort of the same tail.
            streaming = win.percentile(99.0)
            before = CountingFloat.comparisons
            tail = sorted(values[max(0, i + 1 - WINDOW):i + 1])
            naive_comparisons += CountingFloat.comparisons - before
            naive = _interpolated_percentile(tail, 99.0)
            queries += 1
            if streaming != naive:
                mismatches += 1
    return {
        "per_observe": per_observe,
        "mismatches": mismatches,
        "queries": queries,
        "naive_comparisons_per_query": naive_comparisons / queries,
    }


def test_windowed_percentile_exact_with_logn_work(benchmark):
    result = benchmark.pedantic(run_opcount_harness, rounds=1, iterations=1)

    # Identical answers to full sort, at every checkpoint.
    assert result["queries"] == STREAM // 64
    assert result["mismatches"] == 0

    # O(log n) work per observation: insort bisection plus (once the
    # window is full) the eviction's bisect_left — comfortably within
    # 2*log2(window) + slack, and nowhere near O(n).
    bound = 2 * math.log2(WINDOW) + 8
    worst = max(result["per_observe"])
    mean = sum(result["per_observe"]) / len(result["per_observe"])
    assert worst <= bound, (worst, bound)
    assert result["naive_comparisons_per_query"] > 10 * worst

    print_table(
        f"WINDOWED P99 ({STREAM} observations, window {WINDOW})",
        ["metric", "value"],
        [("comparisons/observe (mean)", fmt(mean, 2)),
         ("comparisons/observe (worst)", worst),
         ("O(log n) bound", fmt(bound, 1)),
         ("naive sort comparisons/query",
          fmt(result["naive_comparisons_per_query"], 0)),
         ("answer mismatches vs full sort", result["mismatches"])],
    )
    _merge_payload("windowed_percentile", {
        "stream": STREAM,
        "window": WINDOW,
        "comparisons_per_observe_mean": mean,
        "comparisons_per_observe_worst": worst,
        "logn_bound": bound,
        "naive_comparisons_per_query":
            result["naive_comparisons_per_query"],
        "mismatches": result["mismatches"],
    })
