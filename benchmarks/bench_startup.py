"""E5 — virtual-cluster instantiation time vs propagation mechanism.

Paper §II: "a broadcast chain mechanism (based on the Kastafior
software...) is used to efficiently distribute virtual machine data to
many physical resources [and] a mechanism based on copy-on-write images
allows near-instant virtual machine creation — radically speeding up
the startup time of virtual clusters."

Expected shape: unicast deployment time grows linearly with cluster
size; the broadcast chain is ~flat; CoW over a warm cache is
near-instant; chain+CoW dominates at every size.
"""

import numpy as np
import pytest

from repro.cloud import (
    BroadcastChainPropagation,
    CowPropagation,
    HostImageCache,
    UnicastPropagation,
    make_image,
)
from repro.hypervisor import PhysicalHost
from repro.network import FlowScheduler, Site, Topology, gbit_per_s
from repro.simkernel import Simulator

from _tables import print_table

IMAGE_BLOCKS = 262144  # 1 GiB image
SIZES = (1, 2, 4, 8, 16, 32, 64)


def deploy(strategy_name: str, n_hosts: int, warm: bool = False):
    sim = Simulator()
    topo = Topology()
    topo.add_site(Site("s", lan_bandwidth=gbit_per_s(10)))
    sched = FlowScheduler(sim, topo)
    cache = HostImageCache()
    cls = {
        "unicast": UnicastPropagation,
        "chain": BroadcastChainPropagation,
        "cow": CowPropagation,
    }[strategy_name]
    strategy = cls(sim, sched, cache)
    hosts = [PhysicalHost(f"h{i}", "s") for i in range(n_hosts)]
    image = make_image("img", np.random.default_rng(0),
                       n_blocks=IMAGE_BLOCKS)
    if warm:
        for h in hosts:
            cache.put(h, image.name)
    stats = sim.run(until=strategy.deploy(image, hosts))
    return stats


@pytest.mark.parametrize("strategy", ["unicast", "chain", "cow"])
def test_e5_strategy_scaling(benchmark, strategy):
    def sweep():
        return {n: deploy(strategy, n) for n in SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "strategy": strategy,
        "durations": {n: round(s.duration, 2) for n, s in results.items()},
    })
    if strategy == "unicast":
        # Linear growth.
        assert results[64].duration > 30 * results[1].duration
    else:
        # Pipelined or CoW: far sublinear.
        assert results[64].duration < 4 * results[1].duration


def test_e5_cow_warm_cache_near_instant(benchmark):
    stats = benchmark.pedantic(
        deploy, args=("cow", 64), kwargs={"warm": True},
        rounds=1, iterations=1)
    assert stats.duration < 0.5
    assert stats.bytes_moved == 0


def test_e5_summary_table(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            uni = deploy("unicast", n)
            chain = deploy("chain", n)
            cow_cold = deploy("cow", n)
            cow_warm = deploy("cow", n, warm=True)
            rows.append((n, uni, chain, cow_cold, cow_warm))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, f"{u.duration:.1f}", f"{c.duration:.1f}",
         f"{cc.duration:.1f}", f"{cw.duration:.2f}")
        for n, u, c, cc, cw in results
    ]
    print_table(
        "E5: cluster startup time (s) vs size, 1 GiB image, 10 Gbit/s LAN",
        ["nodes", "unicast", "chain", "chain+CoW(cold)", "CoW(warm)"],
        rows,
    )
    print("shape: unicast linear; chain ~flat; warm CoW near-instant "
          "('radically speeding up the startup time')")
