"""Continuous perf-regression gate: current BENCH_* vs committed baselines.

Every bench emits a ``BENCH_<name>.json`` artifact at the repo root
(stamped by ``_meta.py`` with git sha, interpreter, platform and
scale).  This tool compares those artifacts against the baselines
committed under ``benchmarks/baselines/`` and renders a markdown trend
report.  Exit status is the gate: ``0`` clean (warnings allowed),
``1`` at least one hard regression, ``2`` usage/IO error.

Per metric the spec names a dotted path into the payload, a direction,
and warn/fail tolerances:

``higher``
    Throughput-style: warn when the current value drops below
    ``baseline * (1 - warn)``, fail below ``baseline * (1 - fail)``.
    Tolerances are deliberately generous (25-60%) because bench walls
    on shared CI hosts jitter far more than real regressions need to —
    the gate exists to catch the 2x cliffs, not 5% drift.
``lower``
    Wall-clock/overhead-ratio style, mirrored upward.
``abs-lower``
    Small quantities near zero (overhead percentages) where a ratio is
    meaningless: warn/fail on the *absolute increase* over baseline.
``exact``
    Determinism contracts (event counts, final clocks): any difference
    is an immediate failure, no tolerance — these move only when the
    kernel's semantics move, which is exactly what must not slip in
    unnoticed.

Baselines are per scale: ``baselines/BENCH_<name>.<scale>.json`` is
tried first (scale from the current artifact's meta), then the
unsuffixed name with a matching ``meta.scale``.  A baseline recorded
at a different scale is never compared — the artifact is skipped with
a warning, because cross-scale deltas are configuration, not
performance.

Self-test hook: ``--inject name:dotted.path:factor`` multiplies one
numeric in a *current* payload after loading, letting CI prove the
gate actually fails on a synthetic regression (see the ``perf-gate``
job).

Usage::

    python benchmarks/compare.py                  # all known artifacts
    python benchmarks/compare.py kernel profile   # a subset
    python benchmarks/compare.py --report perf_report.md
    python benchmarks/compare.py --inject kernel:headline.calendar_events_per_sec:0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent
BASELINES = HERE / "baselines"

#: metric spec: (dotted path, kind, warn tolerance, fail tolerance).
#: kinds: higher | lower | abs-lower | exact  (see module docstring).
METRICS = {
    "kernel": [
        ("headline.calendar_events_per_sec", "higher", 0.25, 0.60),
        ("headline.speedup_calendar_vs_heap", "higher", 0.30, 0.60),
        ("headline.vectorized_events_per_sec", "higher", 0.25, 0.60),
        ("scenarios.drain.calendar.events", "exact", 0, 0),
        ("scenarios.drain.heap.events", "exact", 0, 0),
        ("scenarios.cancel.calendar.events", "exact", 0, 0),
    ],
    "profile": [
        ("headline.overhead_null_pct", "abs-lower", 0.05, 0.15),
        ("headline.overhead_enabled_pct", "abs-lower", 0.10, 0.30),
        ("headline.enabled_events_per_sec", "higher", 0.30, 0.60),
        ("backends.calendar.events", "exact", 0, 0),
        ("backends.heap.events", "exact", 0, 0),
    ],
    "flows": [
        ("speedup", "higher", 0.30, 0.60),
        # Raw wall on a bench with no ci scale: the baseline may come
        # from a different host, so only a cliff fails (drift is noted
        # in the report via the meta block).
        ("wall_incremental_s", "lower", 1.00, 3.00),
        ("n_flows", "exact", 0, 0),
        ("churn_events", "exact", 0, 0),
        ("peak_concurrent", "exact", 0, 0),
    ],
    "eventlog": [
        ("append.appends_per_sec", "higher", 0.30, 0.60),
        ("append.events", "exact", 0, 0),
        ("replay.events_per_sec", "higher", 0.30, 0.60),
        ("replay.jobs", "exact", 0, 0),
        ("snapshot.round_trip_events_per_sec", "higher", 0.30, 0.60),
    ],
    "obs": [
        ("overhead.traced_over_null", "lower", 0.50, 1.00),
        ("overhead.labeled_over_flat", "lower", 0.50, 1.00),
        ("sink.stream_over_classic", "lower", 0.50, 1.00),
        ("sink.sampled_over_classic", "lower", 0.50, 1.00),
        ("sink.full_resident_peak", "exact", 0, 0),
        ("sink.sampled_resident_peak", "exact", 0, 0),
        ("sink.sampled_kept_traces", "exact", 0, 0),
        ("sink.sampled_log_mismatch", "exact", 0, 0),
        ("windowed_percentile.mismatches", "exact", 0, 0),
        ("windowed_percentile.comparisons_per_observe_worst",
         "lower", 0.10, 0.25),
    ],
    "obs_scale": [
        ("stream.spans_per_sec", "higher", 0.30, 0.60),
        ("stream.resident_peak", "exact", 0, 0),
        ("stream.archived", "exact", 0, 0),
        ("stream.dropped_traces", "exact", 0, 0),
        ("determinism.log_bytes", "exact", 0, 0),
        ("determinism.log_mismatch", "exact", 0, 0),
        ("determinism.kept_traces", "exact", 0, 0),
    ],
}

STATUS_ORDER = {"ok": 0, "skip": 1, "warn": 2, "FAIL": 3}


def lookup(doc: dict, path: str):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def inject(doc: dict, path: str, factor: float) -> bool:
    """Multiply the numeric at ``path`` in-place (the self-test hook)."""
    parts = path.split(".")
    node = doc
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return False
        node = node[part]
    leaf = parts[-1]
    if not isinstance(node, dict) or not isinstance(node.get(leaf),
                                                    (int, float)):
        return False
    node[leaf] = node[leaf] * factor
    return True


def load_baseline(name: str, scale: str, baselines: Path):
    """The committed baseline for (artifact, scale), or (None, reason)."""
    scaled = baselines / f"BENCH_{name}.{scale}.json"
    if scaled.exists():
        return json.loads(scaled.read_text(encoding="utf-8")), scaled
    plain = baselines / f"BENCH_{name}.json"
    if plain.exists():
        doc = json.loads(plain.read_text(encoding="utf-8"))
        base_scale = doc.get("meta", {}).get("scale")
        if base_scale in (None, scale):
            return doc, plain
        return None, (f"baseline {plain.name} is scale={base_scale!r}, "
                      f"current is {scale!r}")
    return None, f"no baseline for {name!r} at scale {scale!r}"


def compare_metric(path, kind, warn, fail, base, cur):
    """One row: (status, detail)."""
    if cur is None:
        return "skip", "missing in current artifact"
    if base is None:
        return "skip", "missing in baseline"
    if kind == "exact":
        if cur != base:
            return "FAIL", f"determinism contract: {base!r} -> {cur!r}"
        return "ok", "exact match"
    if not isinstance(base, (int, float)) or not isinstance(cur,
                                                            (int, float)):
        return "skip", "non-numeric"
    if kind == "abs-lower":
        delta = cur - base
        detail = f"{base:+.4g} -> {cur:+.4g} ({delta:+.4g})"
        if delta > fail:
            return "FAIL", detail
        if delta > warn:
            return "warn", detail
        return "ok", detail
    if base == 0:
        return "skip", "zero baseline"
    ratio = cur / base
    detail = f"{base:.6g} -> {cur:.6g} ({ratio - 1:+.1%})"
    if kind == "higher":
        if ratio < 1 - fail:
            return "FAIL", detail
        if ratio < 1 - warn:
            return "warn", detail
    elif kind == "lower":
        if ratio > 1 + fail:
            return "FAIL", detail
        if ratio > 1 + warn:
            return "warn", detail
    else:
        return "skip", f"unknown kind {kind!r}"
    return "ok", detail


def compare_artifact(name, artifacts: Path, baselines: Path,
                     injections) -> dict:
    """All metric rows for one artifact, plus meta context."""
    current_path = artifacts / f"BENCH_{name}.json"
    result = {"name": name, "rows": [], "notes": [], "status": "ok"}
    if not current_path.exists():
        result["status"] = "skip"
        result["notes"].append(f"no current artifact {current_path.name} "
                               "(bench not run)")
        return result
    current = json.loads(current_path.read_text(encoding="utf-8"))
    for spec_name, path, factor in injections:
        if spec_name == name:
            if not inject(current, path, factor):
                result["status"] = "FAIL"
                result["notes"].append(
                    f"--inject target {path!r} not found/numeric")
                return result
            result["notes"].append(
                f"injected synthetic regression: {path} x{factor}")
    meta = current.get("meta", {})
    scale = meta.get("scale", "full")
    baseline, where = load_baseline(name, scale, baselines)
    if baseline is None:
        result["status"] = "skip"
        result["notes"].append(str(where))
        return result
    base_meta = baseline.get("meta", {})
    for key in ("python", "platform", "implementation"):
        if (key in meta and key in base_meta
                and meta[key] != base_meta[key]):
            result["notes"].append(
                f"{key} differs from baseline "
                f"({base_meta[key]} -> {meta[key]}): wall-clock deltas "
                "include environment drift")
    if base_meta.get("git_sha"):
        result["notes"].append(f"baseline {Path(where).name} @ "
                               f"{base_meta['git_sha'][:12]}")
    for path, kind, warn, fail in METRICS[name]:
        status, detail = compare_metric(
            path, kind, warn, fail,
            lookup(baseline, path), lookup(current, path))
        result["rows"].append(
            {"metric": path, "kind": kind, "status": status,
             "detail": detail})
        if STATUS_ORDER[status] > STATUS_ORDER[result["status"]]:
            result["status"] = status
    return result


def render_report(results, out_path=None) -> str:
    lines = ["# Perf trend report", ""]
    worst = "ok"
    for r in results:
        if STATUS_ORDER[r["status"]] > STATUS_ORDER[worst]:
            worst = r["status"]
    lines.append(f"Overall: **{worst}**")
    lines.append("")
    for r in results:
        lines.append(f"## {r['name']} — {r['status']}")
        lines.append("")
        for note in r["notes"]:
            lines.append(f"- _{note}_")
        if r["notes"]:
            lines.append("")
        if r["rows"]:
            lines.append("| metric | kind | status | baseline -> current |")
            lines.append("|---|---|---|---|")
            for row in r["rows"]:
                lines.append(f"| `{row['metric']}` | {row['kind']} | "
                             f"{row['status']} | {row['detail']} |")
            lines.append("")
    text = "\n".join(lines) + "\n"
    if out_path is not None:
        Path(out_path).write_text(text, encoding="utf-8")
    return text


def parse_injection(spec: str):
    try:
        name, path, factor = spec.rsplit(":", 2)
        return name, path, float(factor)
    except ValueError:
        raise SystemExit(
            f"--inject expects name:dotted.path:factor, got {spec!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare BENCH_* artifacts against committed baselines")
    parser.add_argument("names", nargs="*", default=[],
                        help="artifact names (default: all known)")
    parser.add_argument("--artifacts", type=Path, default=ROOT,
                        help="directory holding current BENCH_*.json")
    parser.add_argument("--baselines", type=Path, default=BASELINES)
    parser.add_argument("--report", type=Path, default=None,
                        help="write the markdown trend report here")
    parser.add_argument("--inject", action="append", default=[],
                        metavar="NAME:PATH:FACTOR",
                        help="multiply a current metric (gate self-test)")
    args = parser.parse_args(argv)

    names = args.names or sorted(METRICS)
    unknown = [n for n in names if n not in METRICS]
    if unknown:
        print(f"unknown artifact(s): {unknown}; known: {sorted(METRICS)}",
              file=sys.stderr)
        return 2
    injections = [parse_injection(spec) for spec in args.inject]

    try:
        results = [compare_artifact(n, args.artifacts, args.baselines,
                                    injections)
                   for n in names]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error reading artifacts: {exc}", file=sys.stderr)
        return 2

    report = render_report(results, args.report)
    print(report, end="")
    if any(r["status"] == "FAIL" for r in results):
        print("PERF GATE: FAIL", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
