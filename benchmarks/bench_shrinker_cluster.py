"""E2 — dedup savings vs cluster size, memory-only vs memory+disk.

Paper §III-A: "Data similarity is exploited throughout all virtual
machines of the migrated virtual cluster, both in memory and on disk.
Since many or all nodes composing a virtual cluster are usually based on
the same operating system and run similar applications, high inter-VM
data similarity can be found."

Expected shape: savings grow with cluster size (the shared OS/app
content crosses the WAN once, amortized over more VMs) and approach the
ideal redundancy bound; disk dedup starts below memory for a lone VM
(no self-duplication) and overtakes it once the 75%-shared base image
amortizes over the cluster.
"""

import numpy as np
import pytest

from repro.hypervisor import (
    Dirtier,
    DiskImage,
    LiveMigrator,
    MigrationConfig,
    VirtualMachine,
)
from repro.network.units import Mbit
from repro.shrinker import (
    ClusterMigrationCoordinator,
    RegistryDirectory,
    ideal_dedup_saving,
    shrinker_codec_factory,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import generate_disk_fingerprints, web_server

from _tables import pct, print_table

PAGES = 8192  # 32 MiB guests
DISK_BLOCKS = 16384  # 64 MiB disks


def migrate(n_vms: int, use_shrinker: bool, with_disk: bool, seed=5):
    tb = sky_testbed(
        sites=[SiteSpec("src", n_hosts=max(8, n_vms), region="eu"),
               SiteSpec("dst", n_hosts=max(8, n_vms), region="eu")],
        wan_bandwidth=1000 * Mbit,
    )
    sim = tb.sim
    profile = web_server()
    rng = np.random.default_rng(seed)
    vms, dst_hosts = [], []
    for i in range(n_vms):
        mem = profile.generate_memory(rng, PAGES)
        disk = None
        if with_disk:
            disk = DiskImage(
                f"d{i}", DISK_BLOCKS,
                fingerprints=generate_disk_fingerprints(rng, DISK_BLOCKS))
        vm = VirtualMachine(sim, f"vm{i}", mem, disk=disk)
        tb.clouds["src"].hosts[i % len(tb.clouds["src"].hosts)].place(vm)
        vm.boot()
        Dirtier(sim, vm, profile, rng)
        vms.append(vm)
        dst_hosts.append(
            tb.clouds["dst"].hosts[i % len(tb.clouds["dst"].hosts)])
    if use_shrinker:
        migrator = LiveMigrator(
            sim, tb.scheduler, shrinker_codec_factory(RegistryDirectory()))
    else:
        migrator = LiveMigrator(sim, tb.scheduler)
    coord = ClusterMigrationCoordinator(sim, migrator)
    config = MigrationConfig(migrate_storage=with_disk)
    stats = sim.run(until=coord.migrate_cluster(vms, dst_hosts, config,
                                                wave_size=1))
    for vm in vms:
        vm.stop()
    ideal = ideal_dedup_saving([vm.memory.pages for vm in vms])
    return stats, ideal


@pytest.mark.parametrize("n_vms", [1, 2, 4, 8])
def test_e2_savings_grow_with_cluster_size(benchmark, n_vms):
    raw, _ = migrate(n_vms, use_shrinker=False, with_disk=False)
    shr, ideal = benchmark.pedantic(
        migrate, args=(n_vms, True, False), rounds=1, iterations=1)
    raw_mem = sum(s.wire_bytes for s in raw.per_vm)
    shr_mem = sum(s.wire_bytes for s in shr.per_vm)
    saving = 1 - shr_mem / raw_mem
    benchmark.extra_info.update({
        "n_vms": n_vms, "saving": round(saving, 4),
        "ideal": round(ideal, 4),
    })
    assert saving <= ideal + 0.02  # never beats the redundancy bound
    if n_vms >= 4:
        assert saving > 0.35


def test_e2_summary_table(benchmark):
    def sweep():
        out = []
        for n in (1, 2, 4, 8, 16):
            raw_m, _ = migrate(n, False, False)
            shr_m, ideal = migrate(n, True, False)
            raw_d, _ = migrate(n, False, True)
            shr_d, _ = migrate(n, True, True)
            out.append((n, raw_m, shr_m, raw_d, shr_d, ideal))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    prev_saving = -1.0
    for n, raw_m, shr_m, raw_d, shr_d, ideal in results:
        mem_saving = 1 - (sum(s.wire_bytes for s in shr_m.per_vm)
                          / sum(s.wire_bytes for s in raw_m.per_vm))
        disk_saving = 1 - (shr_d.total_wire_bytes / raw_d.total_wire_bytes)
        rows.append((
            n, pct(mem_saving), pct(disk_saving), pct(ideal),
            f"{shr_m.duration:.1f}", f"{raw_m.duration:.1f}",
        ))
        assert mem_saving >= prev_saving - 0.03  # monotone-ish growth
        prev_saving = mem_saving
    print_table(
        "E2: Shrinker saving vs cluster size (web-server VMs, 32 MiB RAM"
        " + 64 MiB disk)",
        ["n_vms", "mem_saving", "mem+disk_saving", "ideal_mem",
         "t_shr(s)", "t_raw(s)"],
        rows,
    )
    print("shape: savings grow with cluster size toward the redundancy "
          "bound;\ndisk dedup starts below memory (no self-duplication) "
          "and overtakes it\nonce the shared base image amortizes over "
          "the cluster")
