"""SCALE — virtual clusters at the paper's target sizes.

Paper §II: "creating infrastructures with hundreds or thousands of
nodes present new challenges linked to scalability of cloud
infrastructures and distributed applications" — the experiments on
FutureGrid + Grid'5000 ran virtual clusters of hundreds of nodes.

This bench provisions sky-computing clusters of 64..512 nodes across
four clouds (chain+CoW propagation, overlay join, contextualization
barrier) and runs a proportionally sized BLAST job on each, reporting
provisioning time, makespan, locality and the simulator's wall-clock
cost — demonstrating the harness operates at the paper's scale.
"""

import time

import numpy as np
import pytest

from repro.mapreduce import JobTracker
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import blast_job

from _tables import pct, print_table

SIZES = (64, 128, 256, 512)


def run_at_scale(n_nodes: int):
    wall_start = time.time()
    per_cloud_hosts = max(2, n_nodes // 4 // 8 + 2)
    tb = sky_testbed(
        sites=[SiteSpec(f"c{i}", n_hosts=per_cloud_hosts,
                        cores_per_host=16,
                        region="eu" if i < 2 else "us")
               for i in range(4)],
        memory_pages=256, image_blocks=1024,
    )
    sim = tb.sim
    t0 = sim.now
    cluster = sim.run(until=tb.federation.create_virtual_cluster(
        tb.image_name, n_nodes))
    provision_time = sim.now - t0
    jt = JobTracker(sim, tb.scheduler, rng=np.random.default_rng(0))
    for vm in cluster:
        jt.add_tracker(vm)
    job = blast_job(np.random.default_rng(1), n_query_batches=4 * n_nodes,
                    mean_batch_seconds=60, db_shard_bytes=1e6)
    result = sim.run(until=jt.submit(job))
    wall = time.time() - wall_start
    return {
        "n": n_nodes,
        "provision_s": provision_time,
        "makespan": result.makespan,
        "locality": result.locality_rate,
        "clouds": len(cluster.site_distribution()),
        "wall_s": wall,
    }


@pytest.mark.parametrize("n_nodes", [64, 256])
def test_scale_cluster_functions(benchmark, n_nodes):
    stats = benchmark.pedantic(run_at_scale, args=(n_nodes,), rounds=1,
                               iterations=1)
    assert stats["clouds"] == 4
    assert stats["locality"] > 0.8
    # Per-task work is constant, so makespan stays roughly flat as the
    # cluster and job grow together (weak scaling).
    assert stats["makespan"] < 600


def test_scale_summary_table(benchmark):
    def sweep():
        return [run_at_scale(n) for n in SIZES]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (s["n"], f"{s['provision_s']:.1f}", f"{s['makespan']:.0f}",
         pct(s["locality"]), f"{s['wall_s']:.1f}")
        for s in results
    ]
    print_table(
        "SCALE: weak-scaling BLAST (4 batches/node) on 4-cloud virtual "
        "clusters",
        ["nodes", "provision(s)", "makespan(s)", "locality",
         "simulator wall(s)"],
        rows,
    )
    print("shape: chain+CoW keeps provisioning ~flat; weak-scaling "
          "makespan ~constant to 512 nodes — 'hundreds or thousands of "
          "nodes'")
    # Weak scaling holds within straggler noise.
    makespans = [s["makespan"] for s in results]
    assert max(makespans) < 2 * min(makespans)
