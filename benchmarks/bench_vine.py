"""E6 — network transparency of inter-cloud live migration (paper §III-B).

Paper claim: "We modified ViNe to reconfigure itself when virtual
machine mobility was detected, so that communications can remain
uninterrupted.  Our approach is based on standard networking techniques
such as ARP proxy and gratuitous ARP messages."

The bench migrates a VM holding open TCP connections between clouds:

* plain IP — the VM must be renumbered, every connection dies;
* ViNe without reconfiguration — the overlay address survives but
  routing is stale forever, connections time out;
* ViNe with reconfiguration — connections survive with a stall equal to
  detection + control-plane convergence.

Also sweeps federation size: reconfiguration latency is bounded by the
farthest router's control latency.
"""


from repro.hypervisor import (
    LiveMigrator,
    MemoryImage,
    VirtualMachine,
)
from repro.network import Address, Connection, ConnectionBroken, \
    PlainIPResolver
from repro.testbeds import SiteSpec, sky_testbed
from repro.vine import MigrationReconfigurator

from _tables import print_table


def build(n_sites=3):
    tb = sky_testbed(
        sites=[SiteSpec(f"c{i}", region="eu" if i % 2 else "us")
               for i in range(n_sites)],
        memory_pages=2048, image_blocks=4096,
    )
    return tb


def make_vm(tb, site, name):
    vm = VirtualMachine(tb.sim, name, MemoryImage(2048))
    tb.clouds[site].hosts[0].place(vm)
    vm.boot()
    return vm


def migrate_with(mode: str, n_sites: int = 3):
    """Returns (survived, stall_seconds, reconfig_latency)."""
    tb = build(n_sites)
    sim, fed = tb.sim, tb.federation
    vm_a = make_vm(tb, "c0", "peer")
    vm_b = make_vm(tb, "c1", "mobile")
    if mode == "plain":
        resolver = PlainIPResolver(tb.topology)
        vm_a.address = Address("c0", 1)
        vm_b.address = Address("c1", 1)
    else:
        resolver = fed.overlay
        fed.overlay.register(vm_a)
        fed.overlay.register(vm_b)
    fed.reconfigurator.enabled = (mode == "vine-reconfig")
    migrator = LiveMigrator(sim, tb.scheduler)
    conn = Connection(sim, tb.scheduler, resolver, vm_a, vm_b,
                      rto_budget=15.0, retry_interval=0.05)
    outcome = {}

    def app(sim):
        yield conn.send(1e5)
        old_site = vm_b.site
        yield migrator.migrate(vm_b, tb.clouds["c2"].hosts[0])
        if mode == "plain":
            # Plain IP: the guest must be renumbered at the new site.
            vm_b.address = Address("c2", 1)
        else:
            fed.reconfigurator.vm_migrated(vm_b, old_site=old_site)
        try:
            yield conn.send(1e5)
            outcome["survived"] = True
        except ConnectionBroken:
            outcome["survived"] = False

    sim.process(app(sim))
    sim.run()
    latency = (fed.reconfigurator.records[-1].reconfiguration_latency
               if fed.reconfigurator.records else None)
    return outcome["survived"], conn.max_stall, latency


def migrate_far(far_latency: float):
    """Reconfiguration with one router behind a high-latency link."""
    from repro.hypervisor import PhysicalHost as Host
    from repro.network import FlowScheduler, Site, Topology
    from repro.simkernel import Simulator
    from repro.vine import ViNeOverlay

    sim = Simulator()
    topo = Topology()
    for name in ("c0", "c1", "c2", "far"):
        topo.add_site(Site(name))
    topo.connect("c0", "c1", bandwidth=1e8, latency=0.02)
    topo.connect("c1", "c2", bandwidth=1e8, latency=0.02)
    topo.connect("c0", "c2", bandwidth=1e8, latency=0.02)
    for name in ("c0", "c1", "c2"):
        topo.connect(name, "far", bandwidth=1e8, latency=far_latency)
    sched = FlowScheduler(sim, topo)
    hosts = {s: Host(f"h-{s}", s, cores=16)
             for s in ("c0", "c1", "c2", "far")}
    overlay = ViNeOverlay(sim, topo, ["c0", "c1", "c2", "far"])
    vm = VirtualMachine(sim, "mobile", MemoryImage(256))
    hosts["c1"].place(vm)
    vm.boot()
    overlay.register(vm)
    recon = MigrationReconfigurator(sim, overlay)
    hosts["c1"].evict(vm)
    hosts["c2"].place(vm)
    record = sim.run(until=recon.vm_migrated(vm, old_site="c1"))
    return None, None, record.reconfiguration_latency


def test_e6_plain_ip_breaks(benchmark):
    survived, _, _ = benchmark.pedantic(
        migrate_with, args=("plain",), rounds=1, iterations=1)
    assert not survived


def test_e6_stale_overlay_breaks(benchmark):
    survived, _, _ = benchmark.pedantic(
        migrate_with, args=("vine-stale",), rounds=1, iterations=1)
    assert not survived


def test_e6_reconfigured_overlay_survives(benchmark):
    survived, stall, latency = benchmark.pedantic(
        migrate_with, args=("vine-reconfig",), rounds=1, iterations=1)
    assert survived
    assert latency is not None and latency < 1.0
    assert stall < 2.0
    benchmark.extra_info.update({
        "stall_ms": round(stall * 1000, 1),
        "reconfig_latency_ms": round(latency * 1000, 1),
    })


def test_e6_summary_table(benchmark):
    def sweep():
        rows = []
        for mode, label in (
            ("plain", "plain IP (renumbered)"),
            ("vine-stale", "ViNe, no reconfiguration"),
            ("vine-reconfig", "ViNe + reconfiguration"),
        ):
            survived, stall, latency = migrate_with(mode)
            rows.append((label, survived, stall, latency))
        scale = []
        for n_sites in (3, 6, 12):
            _, _, latency = migrate_with("vine-reconfig", n_sites)
            scale.append((f"{n_sites} sites", latency))
        # Convergence is bounded by the farthest router's control
        # latency: stretch the farthest link and watch it track.
        for far_ms in (50, 150, 300):
            _, _, latency = migrate_far(far_latency=far_ms / 1000.0)
            scale.append((f"farthest link {far_ms}ms", latency))
        return rows, scale

    rows, scale = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E6: TCP across an inter-cloud live migration",
        ["mechanism", "conn survives", "stall(ms)", "reconfig(ms)"],
        [(label, "yes" if s else "NO",
          f"{stall * 1000:.0f}" if s else "-",
          f"{lat * 1000:.0f}" if lat else "-")
         for label, s, stall, lat in rows],
    )
    print_table(
        "E6b: reconfiguration convergence vs federation size",
        ["sites", "reconfig latency (ms)"],
        [(n, f"{lat * 1000:.0f}") for n, lat in scale],
    )
    print("shape: only the reconfigured overlay keeps connections alive; "
          "convergence is bounded by the farthest control link")
