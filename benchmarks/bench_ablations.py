"""Ablations — the design choices DESIGN.md calls out, isolated.

Five sweeps quantify the design knobs the experiments depend on:

* **A1 digest size** — SHA-1 vs SHA-256 vs MD5 wire cost: bigger digests
  tax every deduplicated page (the report's reason to prefer SHA-1's
  20 B over SHA-256's 32 B at negligible collision-risk difference).
* **A2 registry prepopulation** — indexing content already at the
  destination (resident VMs, image repository) vs starting cold: the
  generalization of Sapuntzakis et al.'s "data available on the
  destination node" that Shrinker's *site-wide* registry enables.
* **A3 migration concurrency** — migrating the cluster all-at-once vs
  in waves vs sequentially: concurrency shortens wall-clock but loses
  some cross-VM dedup ordering; sequential maximizes registry warmth
  per VM.
* **A4 hashing throughput** — the time-saving ceiling as a function of
  the source's hash rate relative to the link (why the paper's time
  saving trails its bandwidth saving).
* **A5 speculative execution** — Hadoop's straggler mitigation on a
  heterogeneous cluster (supports E3's scaling tail).
"""

import numpy as np

from repro.hypervisor import Dirtier, LiveMigrator, MigrationConfig, \
    VirtualMachine
from repro.network.units import Mbit
from repro.shrinker import (
    ClusterMigrationCoordinator,
    MD5,
    RegistryDirectory,
    SHA1,
    SHA256,
    collision_probability,
    shrinker_codec_factory,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import idle, web_server

from _tables import pct, print_table

PAGES = 8192


def build(n_vms=4, profile_fn=web_server, seed=3, wan=1000 * Mbit):
    tb = sky_testbed(
        sites=[SiteSpec("src", n_hosts=max(8, n_vms), region="eu"),
               SiteSpec("dst", n_hosts=max(8, n_vms), region="eu")],
        wan_bandwidth=wan,
    )
    sim = tb.sim
    profile = profile_fn()
    rng = np.random.default_rng(seed)
    vms, dst_hosts = [], []
    for i in range(n_vms):
        vm = VirtualMachine(sim, f"vm{i}",
                            profile.generate_memory(rng, PAGES))
        tb.clouds["src"].hosts[i % 8].place(vm)
        vm.boot()
        Dirtier(sim, vm, profile, rng)
        vms.append(vm)
        dst_hosts.append(tb.clouds["dst"].hosts[i % 8])
    return tb, vms, dst_hosts


def migrate(tb, vms, dst_hosts, codec_factory, wave_size=1):
    migrator = LiveMigrator(tb.sim, tb.scheduler, codec_factory)
    coord = ClusterMigrationCoordinator(tb.sim, migrator)
    stats = tb.sim.run(until=coord.migrate_cluster(
        vms, dst_hosts, MigrationConfig(), wave_size=wave_size))
    for vm in vms:
        vm.stop()
    return stats


def test_a1_digest_size(benchmark):
    def sweep():
        out = []
        for scheme in (MD5, SHA1, SHA256):
            tb, vms, dst_hosts = build()
            stats = migrate(
                tb, vms, dst_hosts,
                shrinker_codec_factory(RegistryDirectory(), scheme=scheme))
            out.append((scheme, stats))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    wire = {}
    for scheme, stats in results:
        wire[scheme.name] = stats.total_wire_bytes
        n_pages = 4 * PAGES
        risk = collision_probability(2**40, scheme)  # a PB of pages
        rows.append((
            scheme.name, scheme.digest_bytes,
            f"{stats.total_wire_bytes / 2**20:.1f}",
            pct(stats.bandwidth_saving),
            f"{risk:.1e}",
        ))
    print_table(
        "A1: digest size vs wire cost (4-VM web-server cluster)",
        ["hash", "digest(B)", "wire MiB", "saving", "P(collision, 1 PB)"],
        rows,
    )
    assert wire["md5"] < wire["sha1"] < wire["sha256"]


def test_a2_registry_prepopulation(benchmark):
    def scenario(prepopulate):
        tb, vms, dst_hosts = build(profile_fn=idle)
        registries = RegistryDirectory()
        if prepopulate:
            # A resident VM of the same profile already runs at dst.
            rng = np.random.default_rng(99)
            resident = VirtualMachine(
                tb.sim, "resident", idle().generate_memory(rng, PAGES))
            tb.clouds["dst"].hosts[7].place(resident)
            resident.boot()
            registries.for_site("dst").prepopulate(vms=[resident])
        return migrate(tb, vms, dst_hosts,
                       shrinker_codec_factory(registries))

    cold = benchmark.pedantic(scenario, args=(False,), rounds=1,
                              iterations=1)
    warm = scenario(True)
    print_table(
        "A2: destination registry prepopulation (4 idle VMs)",
        ["registry", "wire MiB", "saving", "duration(s)"],
        [("cold", f"{cold.total_wire_bytes / 2**20:.1f}",
          pct(cold.bandwidth_saving), f"{cold.duration:.2f}"),
         ("prepopulated", f"{warm.total_wire_bytes / 2**20:.1f}",
          pct(warm.bandwidth_saving), f"{warm.duration:.2f}")],
    )
    assert warm.total_wire_bytes < cold.total_wire_bytes


def test_a3_migration_concurrency(benchmark):
    def sweep():
        out = []
        for wave, label in ((1, "sequential"), (2, "waves of 2"),
                            (None, "all at once")):
            tb, vms, dst_hosts = build(n_vms=8)
            stats = migrate(tb, vms, dst_hosts,
                            shrinker_codec_factory(RegistryDirectory()),
                            wave_size=wave)
            out.append((label, stats))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (label, f"{s.duration:.2f}",
         f"{s.total_wire_bytes / 2**20:.1f}",
         pct(s.bandwidth_saving), f"{s.total_downtime * 1000:.0f}")
        for label, s in results
    ]
    print_table(
        "A3: cluster-migration concurrency (8 web-server VMs)",
        ["schedule", "wall-clock(s)", "wire MiB", "saving",
         "sum downtime(ms)"],
        rows,
    )
    seq = dict(results)["sequential"] if False else results[0][1]
    allat = results[2][1]
    # Concurrency reduces wall-clock; dedup totals stay comparable
    # (the shared registry serves all waves).
    assert allat.duration <= seq.duration * 1.05


def test_a4_hash_throughput(benchmark):
    def sweep():
        out = []
        for rate in (50e6, 150e6, 400e6, None):
            tb, vms, dst_hosts = build(n_vms=1)
            factory = shrinker_codec_factory(
                RegistryDirectory(),
                processing_rate=rate if rate else 1e18)
            stats = migrate(tb, vms, dst_hosts, factory)
            # Baseline for the same seed/VM shape.
            tb2, vms2, dst2 = build(n_vms=1)
            raw = migrate(tb2, vms2, dst2, None)
            out.append((rate, stats, raw))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    time_savings = []
    for rate, stats, raw in results:
        t_saving = 1 - stats.duration / raw.duration
        time_savings.append(t_saving)
        rows.append((
            f"{rate / 1e6:.0f} MB/s" if rate else "infinite",
            f"{stats.duration:.2f}",
            pct(1 - stats.total_wire_bytes / raw.total_wire_bytes),
            pct(t_saving),
        ))
    print_table(
        "A4: source hashing throughput vs time saving "
        "(single web-server VM, 1 Gbit/s)",
        ["hash rate", "t_shr(s)", "bw saved", "time saved"],
        rows,
    )
    print("shape: slow hashing erodes the time saving while the "
          "bandwidth saving is untouched — the paper's 20% vs 30-40% gap")
    # Monotone: faster hashing -> at least as much time saved.
    assert time_savings == sorted(time_savings)
    # Bandwidth saving is independent of hash speed.


def test_a5_speculative_execution(benchmark):
    """Stragglers vs speculation: a heterogeneous cluster (one node at
    0.2x speed) runs the same BLAST batch with and without backup
    attempts."""
    from repro.hypervisor import MemoryImage
    from repro.hypervisor import VirtualMachine as VM
    from repro.mapreduce import JobTracker
    from repro.workloads import blast_job

    def run(speculative):
        tb = sky_testbed(
            sites=[SiteSpec("s", n_hosts=10, region="eu")],
            memory_pages=1024, image_blocks=4096,
        )
        sim = tb.sim
        jt = JobTracker(sim, tb.scheduler,
                        rng=np.random.default_rng(0),
                        speculative=speculative)
        for i in range(8):
            vm = VM(sim, f"w{i}", MemoryImage(256))
            tb.clouds["s"].hosts[i].place(vm)
            vm.boot()
            jt.add_tracker(vm, speed=0.1 if i == 7 else 1.0)
        job = blast_job(np.random.default_rng(5), n_query_batches=16,
                        mean_batch_seconds=30, db_shard_bytes=1e6,
                        n_reduces=0)
        return sim.run(until=jt.submit(job))

    def sweep():
        return run(False), run(True)

    plain, spec = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "A5: speculative execution on a heterogeneous cluster "
        "(8 nodes, one at 0.1x)",
        ["mode", "makespan(s)", "map attempts", "backups", "wasted"],
        [("off", f"{plain.makespan:.0f}", plain.map_attempts,
          plain.speculative_launched, plain.wasted_attempts),
         ("on", f"{spec.makespan:.0f}", spec.map_attempts,
          spec.speculative_launched, spec.wasted_attempts)],
    )
    print("shape: backup attempts clip the straggler tail at the cost "
          "of a few wasted attempts")
    assert spec.makespan < plain.makespan
    assert spec.speculative_launched >= 1


def test_a6_wan_congestion_during_migration(benchmark):
    """Mid-flight WAN capacity collapse: Shrinker's reduced volume makes
    migrations far less exposed to congestion windows."""

    def run(use_shrinker, collapse_to=None):
        tb, vms, dst_hosts = build(n_vms=4)
        if collapse_to is not None:
            def congestion(sim):
                yield sim.timeout(0.5)
                tb.topology.set_bandwidth("src", "dst", collapse_to)
            tb.sim.process(congestion(tb.sim))
        factory = (shrinker_codec_factory(RegistryDirectory())
                   if use_shrinker else None)
        return migrate(tb, vms, dst_hosts, factory)

    def sweep():
        out = []
        for label, collapse in (("1 Gbit/s steady", None),
                                ("collapse to 100 Mbit/s", 12.5e6)):
            raw = run(False, collapse)
            shr = run(True, collapse)
            out.append((label, raw, shr))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (label, f"{raw.duration:.1f}", f"{shr.duration:.1f}",
         pct(1 - shr.duration / raw.duration))
        for label, raw, shr in results
    ]
    print_table(
        "A6: migration under WAN congestion (4 web-server VMs)",
        ["WAN condition", "t_raw(s)", "t_shr(s)", "time saved"],
        rows,
    )
    print("shape: when the WAN degrades, the bytes you did not send are "
          "the seconds you do not wait — dedup's advantage grows")
    steady_saving = 1 - results[0][2].duration / results[0][1].duration
    congested_saving = 1 - results[1][2].duration / results[1][1].duration
    assert congested_saving > steady_saving
