"""Shared table-printing helpers for the experiment benches.

Each bench regenerates one of the paper's results as a printed table
(the 2-page PhD-forum paper reports results in prose; DESIGN.md §4 maps
each claim to an experiment id E1..E10).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import List, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: List[Sequence], widths=None) -> None:
    """Print an aligned experiment table."""
    if widths is None:
        widths = []
        for i, h in enumerate(headers):
            cell_width = max([len(str(r[i])) for r in rows] + [len(h)])
            widths.append(cell_width + 2)
    print(f"\n=== {title} ===")
    print("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("".join(str(c).rjust(w) for c, w in zip(row, widths)))


def fmt(value, nd=1) -> str:
    """Format a number compactly."""
    if isinstance(value, float):
        return f"{value:.{nd}f}"
    return str(value)


def pct(value) -> str:
    return f"{value * 100:.1f}%"


def mib(nbytes) -> str:
    return f"{nbytes / 2**20:.1f}"
