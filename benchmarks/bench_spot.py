"""E9 — migratable spot instances vs the alternatives (paper §IV).

Paper proposal: "migratable spot instances which, instead of being
killed when their resource allocation is canceled, are allowed to
migrate to a different cloud."

The bench runs a batch of long computations on spot instances under a
volatile price trace and compares three semantics:

* **classic** — reclaimed instances die, unfinished work is lost;
* **checkpoint/restart** — the pre-migration state of the art: periodic
  snapshots to a refuge cloud; a reclaim loses only the work since the
  last checkpoint, but pays continuous checkpoint traffic;
* **migratable** — the paper's mechanism: live-migrate during the
  reclamation grace window, losing (nearly) nothing.

Expected shape: lost work classic >> checkpoint > migratable ~ 0, with
checkpointing paying a steady WAN tax that migration does not.
"""

import time

import numpy as np

from repro.cloud import SpotMarket, SpotState
from repro.controlplane import ControlPlane, SchedulerConfig, SpotPolicy
from repro.obs import Tracer
from repro.sky import CheckpointingSpotManager, MigratableSpotManager
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess, spot_price_trace, web_server

from _meta import write_payload
from _tables import fmt, print_table

JOB_SECONDS = 6 * 3600.0
N_INSTANCES = 8
BID = 0.06


def run(mode: str, seed: int):
    tb = sky_testbed(
        sites=[SiteSpec("volatile", region="us"),
               SiteSpec("refuge", region="us")],
        memory_pages=2048, image_blocks=8192,
    )
    sim, fed = tb.sim, tb.federation
    rng = np.random.default_rng(seed)
    times, prices = spot_price_trace(
        rng, duration=11 * 3600, tick=300, base=0.03,
        spike_prob=0.06, spike_magnitude=5.0)
    market = SpotMarket(sim, tb.clouds["volatile"],
                        SpotPriceProcess(sim, times, prices),
                        reclaim_grace=120.0)
    manager = None
    ckpt = None
    if mode == "migratable":
        manager = MigratableSpotManager(fed)
        manager.attach(market)
    elif mode == "checkpoint":
        ckpt = CheckpointingSpotManager(fed, "refuge", interval=1800.0)

    progress = {}
    lost_log = []

    def job(sim, inst, start_progress=0.0, key=None):
        key = key or inst.vm.name
        progress[key] = start_progress
        while progress[key] < JOB_SECONDS:
            yield sim.timeout(60.0)
            if inst.state is SpotState.RECLAIMED:
                if ckpt is not None and key in ckpt.last_checkpoint or (
                    ckpt is not None
                    and inst.vm.name in ckpt.last_checkpoint
                ):
                    # Restore from the last snapshot; lose the delta.
                    age = ckpt.checkpoint_age(inst.vm.name, sim.now)
                    lost = min(progress[key], age if age else progress[key])
                    lost_log.append(lost)
                    resume_from = max(0.0, progress[key] - lost)
                    new_vm, record = yield ckpt.restore(
                        inst, "debian", memory_factory=memory_factory)
                    fed.overlay.register(new_vm)
                    sim.process(job(sim, _Restored(new_vm), resume_from,
                                    key=key))
                else:
                    lost_log.append(progress[key])
                return
            progress[key] += 60.0

    class _Restored:
        """Restored replacements run on-demand: never reclaimed."""

        def __init__(self, vm):
            self.vm = vm
            self.state = SpotState.RUNNING

    profile = web_server()
    mem_rng = np.random.default_rng(seed + 1)

    def memory_factory(name):
        return profile.generate_memory(mem_rng, 2048)

    def launch(sim):
        for _ in range(N_INSTANCES):
            inst = yield market.request_spot(
                "debian", bid=BID, memory_factory=memory_factory)
            fed.overlay.register(inst.vm)
            if ckpt is not None:
                ckpt.protect(inst.vm)
            sim.process(job(sim, inst))

    sim.process(launch(sim))
    sim.run(until=12 * 3600)

    finished = sum(1 for p in progress.values() if p >= JOB_SECONDS)
    lost = sum(lost_log)
    reclaimed = sum(1 for i in market.instances
                    if i.state is SpotState.RECLAIMED)
    rescued = sum(1 for i in market.instances
                  if i.state is SpotState.RESCUED)
    rescue_durations = ([r.migration_duration for r in manager.records
                         if r.succeeded] if manager else [])
    overhead_bytes = ckpt.total_checkpoint_bytes if ckpt else 0.0
    return {
        "finished": finished, "lost_hours": lost / 3600.0,
        "reclaimed": reclaimed, "rescued": rescued,
        "rescue_durations": rescue_durations,
        "overhead_mib": overhead_bytes / 2**20,
    }


def test_e9_migratable_loses_no_work(benchmark):
    classic = run("classic", seed=11)
    migratable = benchmark.pedantic(run, args=("migratable", 11), rounds=1,
                                    iterations=1)
    assert classic["reclaimed"] > 0  # the trace did spike
    assert migratable["finished"] >= classic["finished"]
    assert migratable["lost_hours"] <= classic["lost_hours"]
    assert migratable["lost_hours"] == 0.0
    assert migratable["rescued"] > 0
    benchmark.extra_info.update({
        "classic_lost_hours": round(classic["lost_hours"], 2),
        "migratable_lost_hours": round(migratable["lost_hours"], 2),
    })


def test_e9_rescue_fits_grace_window(benchmark):
    result = benchmark.pedantic(run, args=("migratable", 11), rounds=1,
                                iterations=1)
    assert result["rescue_durations"]
    assert all(d <= 120.0 for d in result["rescue_durations"])


def test_e9_checkpoint_middle_ground(benchmark):
    classic = run("classic", seed=11)
    ckpt = benchmark.pedantic(run, args=("checkpoint", 11), rounds=1,
                              iterations=1)
    migratable = run("migratable", seed=11)
    # Ordering: classic loses most, checkpointing bounds the loss to the
    # checkpoint interval, migration loses nothing.
    assert ckpt["lost_hours"] <= classic["lost_hours"]
    assert ckpt["lost_hours"] <= 0.5 * N_INSTANCES + 1e-9  # <=30min each
    assert migratable["lost_hours"] <= ckpt["lost_hours"]
    assert ckpt["finished"] >= classic["finished"]
    # ...but checkpointing pays a continuous WAN tax.
    assert ckpt["overhead_mib"] > 0


def test_e9_summary_table(benchmark):
    def sweep():
        rows = []
        for seed in (11, 23, 37):
            rows.append((seed, run("classic", seed),
                         run("checkpoint", seed),
                         run("migratable", seed)))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for seed, c, k, m in results:
        rows.append((
            seed,
            f"{c['finished']}/{N_INSTANCES}", f"{c['lost_hours']:.1f}",
            f"{k['finished']}/{N_INSTANCES}", f"{k['lost_hours']:.1f}",
            f"{k['overhead_mib']:.0f}",
            f"{m['finished']}/{N_INSTANCES}", f"{m['lost_hours']:.1f}",
            (f"{np.mean(m['rescue_durations']):.1f}"
             if m["rescue_durations"] else "-"),
        ))
    print_table(
        f"E9: {N_INSTANCES} x {JOB_SECONDS / 3600:.0f}h jobs on spot "
        f"instances (bid ${BID}/h, 120s grace, 30min checkpoints)",
        ["seed", "cls done", "lost(h)",
         "ckpt done", "lost(h)", "ckpt MiB",
         "migr done", "lost(h)", "rescue t(s)"],
        rows,
    )
    print("shape: lost work classic >> checkpoint > migratable ~ 0; "
          "checkpointing pays a standing WAN tax migration avoids")


# -- spot-backed control plane at scale ----------------------------------
#
# The subsystem test: the fair-share scheduler backs its leases with
# bid-priced spot capacity (repro.controlplane.spot), rides out the
# price spikes via rescue / requeue-with-progress, and the whole
# 1000-job mixed workload must finish markedly cheaper than the same
# workload on demand.

SPOT_N_JOBS = 1000
SPOT_TENANTS = (("alice", 1.0), ("bob", 2.0), ("carol", 1.0))


def build_spot_plane(with_spot: bool, seed: int = 123):
    tb = sky_testbed(
        sites=[SiteSpec(f"c{i}", n_hosts=4, cores_per_host=16,
                        on_demand_hourly=0.10 + 0.02 * i,
                        region="eu" if i < 2 else "us")
               for i in range(3)],
        memory_pages=256, image_blocks=512,
    )
    markets = None
    if with_spot:
        markets = {}
        for k, (name, cloud) in enumerate(sorted(tb.clouds.items())):
            rng = np.random.default_rng(seed + 7 * k)
            times, prices = spot_price_trace(
                rng, duration=48 * 3600, tick=300, base=0.03,
                spike_prob=0.04, spike_magnitude=6.0)
            markets[name] = SpotMarket(
                tb.sim, cloud, SpotPriceProcess(tb.sim, times, prices),
                reclaim_grace=120.0)
    tracer = Tracer(tb.sim)
    plane = ControlPlane(
        tb.sim, tb.federation, tb.image_name,
        config=SchedulerConfig(interval=10.0, lease_term=600.0,
                               max_attempts=10),
        spot_markets=markets,
        spot_policy=SpotPolicy(starvation_patience=1200.0)
        if with_spot else None,
        tracer=tracer,
    ).start()
    for name, weight in SPOT_TENANTS:
        plane.register_tenant(name, weight=weight)
    return tb, plane, tracer


def submit_spot_workload(plane, n_jobs=SPOT_N_JOBS, seed=123):
    rng = np.random.default_rng(seed)
    names = [name for name, _ in SPOT_TENANTS]
    jobs = []
    for i in range(n_jobs):
        tenant = names[int(rng.integers(len(names)))]
        n_nodes = int(rng.choice([1, 1, 2, 2, 4, 8]))
        runtime = float(rng.integers(60, 601))
        jobs.append(plane.submit(tenant, n_nodes=n_nodes, runtime=runtime,
                                 priority=int(rng.integers(3)),
                                 name=f"w{i}"))
    return jobs


def run_spot_scenario(with_spot: bool):
    wall = time.time()
    tb, plane, tracer = build_spot_plane(with_spot)
    jobs = submit_spot_workload(plane)
    tb.sim.run(until=plane.all_done(jobs))
    cost = sum(c.meter.cost(tb.sim.now) for c in tb.clouds.values())
    return {
        "plane": plane, "tracer": tracer, "jobs": jobs,
        "cost": cost, "makespan": tb.sim.now,
        "summary": plane.summary(),
        "wall_s": time.time() - wall,
    }


def test_spot_backed_1000_jobs_save_over_on_demand(benchmark):
    spot = benchmark.pedantic(run_spot_scenario, args=(True,),
                              rounds=1, iterations=1)
    baseline = run_spot_scenario(False)

    s = spot["summary"]
    assert s["completed"] == SPOT_N_JOBS, s
    assert baseline["summary"]["completed"] == SPOT_N_JOBS
    assert spot["plane"].leases.leaked() == []

    savings_pct = 1.0 - spot["cost"] / baseline["cost"]
    spot_summary = s["spot"]

    # Every reclamation episode that ended a backing resolved to exactly
    # one outcome per instance...
    mgr = spot["plane"].spot
    terminal = [e for e in mgr.resolutions()]
    assert len({e.vm_name for e in terminal}) == len(terminal)
    # ...visible as trace spans...
    episode_spans = [sp for sp in tracer_spans(spot["tracer"])
                     if sp.name.startswith("spot-reclaim:")]
    resolved = [sp for sp in episode_spans if sp.end_time is not None]
    assert len(resolved) == len(episode_spans)
    assert {sp.status for sp in resolved} <= {
        "rescued", "requeued", "checkpointed", "survived", "closed"}
    # ...and as per-tenant counters.
    metrics = spot["plane"].metrics
    for outcome, count in spot_summary["outcomes"].items():
        if count:
            per_tenant = sum(
                metrics.series(f"spot.{outcome}.{t}").last() or 0
                for t, _ in SPOT_TENANTS)
            assert per_tenant == count

    rows = [
        ("jobs completed", s["completed"]),
        ("nodes spot-backed", spot_summary["enrolled"]),
        ("reclaim episodes", spot_summary["reclaim_events"]),
        ("rescued / ckpt / requeued",
         "{rescued}/{checkpointed}/{requeued}".format(
             **spot_summary["outcomes"])),
        ("on-demand cost ($)", fmt(baseline["cost"], 2)),
        ("spot-backed cost ($)", fmt(spot["cost"], 2)),
        ("savings", f"{savings_pct:.0%}"),
        ("makespan spot/od (sim s)",
         f"{spot['makespan']:.0f}/{baseline['makespan']:.0f}"),
        ("wall (s)", fmt(spot["wall_s"], 1)),
    ]
    print_table("SPOT-BACKED CONTROL PLANE: 1000 jobs vs on-demand",
                ["metric", "value"], rows)

    assert spot_summary["enrolled"] > 0
    assert savings_pct >= 0.20, f"savings {savings_pct:.1%} below 20%"
    assert spot_summary["savings_total"] > 0

    exported = metrics.to_dict()
    payload = {
        "savings_pct": savings_pct,
        "on_demand_cost": baseline["cost"],
        "spot_cost": spot["cost"],
        "outcomes": spot_summary["outcomes"],
        "enrolled": spot_summary["enrolled"],
        "savings_by_tenant": spot_summary["savings_by_tenant"],
        "series": {k: v for k, v in exported.items()
                   if k.startswith("spot.") or k in
                   ("queue.depth", "jobs.completed")},
    }
    write_payload("spot", payload, indent=1)


def tracer_spans(tracer):
    return tracer.spans
