"""E9 — migratable spot instances vs the alternatives (paper §IV).

Paper proposal: "migratable spot instances which, instead of being
killed when their resource allocation is canceled, are allowed to
migrate to a different cloud."

The bench runs a batch of long computations on spot instances under a
volatile price trace and compares three semantics:

* **classic** — reclaimed instances die, unfinished work is lost;
* **checkpoint/restart** — the pre-migration state of the art: periodic
  snapshots to a refuge cloud; a reclaim loses only the work since the
  last checkpoint, but pays continuous checkpoint traffic;
* **migratable** — the paper's mechanism: live-migrate during the
  reclamation grace window, losing (nearly) nothing.

Expected shape: lost work classic >> checkpoint > migratable ~ 0, with
checkpointing paying a steady WAN tax that migration does not.
"""

import numpy as np

from repro.cloud import SpotMarket, SpotState
from repro.sky import CheckpointingSpotManager, MigratableSpotManager
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import SpotPriceProcess, spot_price_trace, web_server

from _tables import print_table

JOB_SECONDS = 6 * 3600.0
N_INSTANCES = 8
BID = 0.06


def run(mode: str, seed: int):
    tb = sky_testbed(
        sites=[SiteSpec("volatile", region="us"),
               SiteSpec("refuge", region="us")],
        memory_pages=2048, image_blocks=8192,
    )
    sim, fed = tb.sim, tb.federation
    rng = np.random.default_rng(seed)
    times, prices = spot_price_trace(
        rng, duration=11 * 3600, tick=300, base=0.03,
        spike_prob=0.06, spike_magnitude=5.0)
    market = SpotMarket(sim, tb.clouds["volatile"],
                        SpotPriceProcess(sim, times, prices),
                        reclaim_grace=120.0)
    manager = None
    ckpt = None
    if mode == "migratable":
        manager = MigratableSpotManager(fed)
        manager.attach(market)
    elif mode == "checkpoint":
        ckpt = CheckpointingSpotManager(fed, "refuge", interval=1800.0)

    progress = {}
    lost_log = []

    def job(sim, inst, start_progress=0.0, key=None):
        key = key or inst.vm.name
        progress[key] = start_progress
        while progress[key] < JOB_SECONDS:
            yield sim.timeout(60.0)
            if inst.state is SpotState.RECLAIMED:
                if ckpt is not None and key in ckpt.last_checkpoint or (
                    ckpt is not None
                    and inst.vm.name in ckpt.last_checkpoint
                ):
                    # Restore from the last snapshot; lose the delta.
                    age = ckpt.checkpoint_age(inst.vm.name, sim.now)
                    lost = min(progress[key], age if age else progress[key])
                    lost_log.append(lost)
                    resume_from = max(0.0, progress[key] - lost)
                    new_vm, record = yield ckpt.restore(
                        inst, "debian", memory_factory=memory_factory)
                    fed.overlay.register(new_vm)
                    sim.process(job(sim, _Restored(new_vm), resume_from,
                                    key=key))
                else:
                    lost_log.append(progress[key])
                return
            progress[key] += 60.0

    class _Restored:
        """Restored replacements run on-demand: never reclaimed."""

        def __init__(self, vm):
            self.vm = vm
            self.state = SpotState.RUNNING

    profile = web_server()
    mem_rng = np.random.default_rng(seed + 1)

    def memory_factory(name):
        return profile.generate_memory(mem_rng, 2048)

    def launch(sim):
        for _ in range(N_INSTANCES):
            inst = yield market.request_spot(
                "debian", bid=BID, memory_factory=memory_factory)
            fed.overlay.register(inst.vm)
            if ckpt is not None:
                ckpt.protect(inst.vm)
            sim.process(job(sim, inst))

    sim.process(launch(sim))
    sim.run(until=12 * 3600)

    finished = sum(1 for p in progress.values() if p >= JOB_SECONDS)
    lost = sum(lost_log)
    reclaimed = sum(1 for i in market.instances
                    if i.state is SpotState.RECLAIMED)
    rescued = sum(1 for i in market.instances
                  if i.state is SpotState.RESCUED)
    rescue_durations = ([r.migration_duration for r in manager.records
                         if r.succeeded] if manager else [])
    overhead_bytes = ckpt.total_checkpoint_bytes if ckpt else 0.0
    return {
        "finished": finished, "lost_hours": lost / 3600.0,
        "reclaimed": reclaimed, "rescued": rescued,
        "rescue_durations": rescue_durations,
        "overhead_mib": overhead_bytes / 2**20,
    }


def test_e9_migratable_loses_no_work(benchmark):
    classic = run("classic", seed=11)
    migratable = benchmark.pedantic(run, args=("migratable", 11), rounds=1,
                                    iterations=1)
    assert classic["reclaimed"] > 0  # the trace did spike
    assert migratable["finished"] >= classic["finished"]
    assert migratable["lost_hours"] <= classic["lost_hours"]
    assert migratable["lost_hours"] == 0.0
    assert migratable["rescued"] > 0
    benchmark.extra_info.update({
        "classic_lost_hours": round(classic["lost_hours"], 2),
        "migratable_lost_hours": round(migratable["lost_hours"], 2),
    })


def test_e9_rescue_fits_grace_window(benchmark):
    result = benchmark.pedantic(run, args=("migratable", 11), rounds=1,
                                iterations=1)
    assert result["rescue_durations"]
    assert all(d <= 120.0 for d in result["rescue_durations"])


def test_e9_checkpoint_middle_ground(benchmark):
    classic = run("classic", seed=11)
    ckpt = benchmark.pedantic(run, args=("checkpoint", 11), rounds=1,
                              iterations=1)
    migratable = run("migratable", seed=11)
    # Ordering: classic loses most, checkpointing bounds the loss to the
    # checkpoint interval, migration loses nothing.
    assert ckpt["lost_hours"] <= classic["lost_hours"]
    assert ckpt["lost_hours"] <= 0.5 * N_INSTANCES + 1e-9  # <=30min each
    assert migratable["lost_hours"] <= ckpt["lost_hours"]
    assert ckpt["finished"] >= classic["finished"]
    # ...but checkpointing pays a continuous WAN tax.
    assert ckpt["overhead_mib"] > 0


def test_e9_summary_table(benchmark):
    def sweep():
        rows = []
        for seed in (11, 23, 37):
            rows.append((seed, run("classic", seed),
                         run("checkpoint", seed),
                         run("migratable", seed)))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for seed, c, k, m in results:
        rows.append((
            seed,
            f"{c['finished']}/{N_INSTANCES}", f"{c['lost_hours']:.1f}",
            f"{k['finished']}/{N_INSTANCES}", f"{k['lost_hours']:.1f}",
            f"{k['overhead_mib']:.0f}",
            f"{m['finished']}/{N_INSTANCES}", f"{m['lost_hours']:.1f}",
            (f"{np.mean(m['rescue_durations']):.1f}"
             if m["rescue_durations"] else "-"),
        ))
    print_table(
        f"E9: {N_INSTANCES} x {JOB_SECONDS / 3600:.0f}h jobs on spot "
        f"instances (bid ${BID}/h, 120s grace, 30min checkpoints)",
        ["seed", "cls done", "lost(h)",
         "ckpt done", "lost(h)", "ckpt MiB",
         "migr done", "lost(h)", "rescue t(s)"],
        rows,
    )
    print("shape: lost work classic >> checkpoint > migratable ~ 0; "
          "checkpointing pays a standing WAN tax migration avoids")
