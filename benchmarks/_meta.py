"""Shared metadata block for every ``BENCH_*.json`` artifact.

The perf-regression harness (``benchmarks/compare.py``) compares the
current artifacts against committed baselines; that only makes sense
when both sides declare *what produced them*.  Every bench emitter
therefore stamps its payload with one common ``meta`` block:

``schema``
    ``repro.bench-meta/1``.
``git_sha``
    The commit the numbers were measured at (``None`` outside a git
    checkout — e.g. an sdist build).
``python`` / ``implementation`` / ``platform``
    Interpreter and machine; compare.py warns when they differ from the
    baseline's, because cross-machine wall-clock deltas are noise.
``scale``
    ``"ci"`` under ``KERNEL_BENCH_SCALE=ci``, else ``"full"`` — the
    baseline file is selected per scale, never compared across scales.

Emitters call :func:`write_payload` (whole-artifact writers) or
:func:`merge_payload` (section-at-a-time writers like ``bench_obs``);
both inject/refresh the ``meta`` block on every write.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent  # BENCH_*.json artifacts live at the repo root

META_SCHEMA = "repro.bench-meta/1"


def git_sha() -> "str | None":
    """Current HEAD commit, or ``None`` when git/the repo is absent."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_scale() -> str:
    """``"ci"`` for the capped smoke configuration, else ``"full"``."""
    return "ci" if os.environ.get("KERNEL_BENCH_SCALE") == "ci" else "full"


def bench_meta(scale: "str | None" = None) -> dict:
    """The common provenance block (see module docstring)."""
    return {
        "schema": META_SCHEMA,
        "git_sha": git_sha(),
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "platform": f"{sys.platform}-{_platform.machine()}",
        "scale": scale if scale is not None else bench_scale(),
    }


def artifact_path(name: str) -> Path:
    """Repo-root path of artifact ``name`` (``BENCH_<name>.json``)."""
    return ROOT / f"BENCH_{name}.json"


def write_payload(name: str, payload: dict,
                  scale: "str | None" = None, indent: int = 2) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root with ``meta``
    injected; returns the path."""
    doc = dict(payload)
    doc["meta"] = bench_meta(scale)
    path = artifact_path(name)
    path.write_text(json.dumps(doc, indent=indent, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def merge_payload(name: str, section: str, data: dict,
                  scale: "str | None" = None, indent: int = 1) -> Path:
    """Merge ``section`` into ``BENCH_<name>.json``, refreshing ``meta``
    (for benches whose scenarios each write their own section)."""
    path = artifact_path(name)
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload[section] = data
    payload["meta"] = bench_meta(scale)
    path.write_text(json.dumps(payload, indent=indent, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
