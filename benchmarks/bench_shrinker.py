"""E1 — Shrinker vs baseline virtual-cluster migration (paper §III-A).

Paper claim: "Initial experiments on the Grid'5000 testbed with an
implementation supporting detection of inter-VM data similarity only in
memory showed that Shrinker is able to reduce migration time by 20% and
wide area bandwidth usage of migration by 30 to 40% depending on
workload."

This bench migrates a 4-VM virtual cluster (sequentially, as the
Shrinker prototype did) per workload profile, baseline vs Shrinker with
one shared destination registry, memory-only dedup.  Expected shape:

* bandwidth savings track each workload's redundant fraction — the
  realistic middle (web-server, kernel-build) sits in the paper's
  30-40% band, idle above it, database below;
* time savings trail bandwidth savings (~20%) because page hashing
  competes with the ~1 Gbit/s link in the migration path.
"""

import numpy as np
import pytest

from repro.hypervisor import Dirtier, LiveMigrator, MigrationConfig, \
    VirtualMachine
from repro.network.units import Mbit
from repro.shrinker import (
    ClusterMigrationCoordinator,
    RegistryDirectory,
    shrinker_codec_factory,
)
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import PROFILES

from _tables import pct, print_table

PAGES = 16384  # 64 MiB guests
CLUSTER = 4
WAN = 1000 * Mbit


def migrate_cluster(profile_name: str, use_shrinker: bool, seed: int = 3):
    tb = sky_testbed(
        sites=[SiteSpec("src", region="eu"), SiteSpec("dst", region="eu")],
        wan_bandwidth=WAN,
    )
    sim = tb.sim
    profile = PROFILES[profile_name]()
    rng = np.random.default_rng(seed)
    vms, dst_hosts = [], []
    for i in range(CLUSTER):
        vm = VirtualMachine(sim, f"vm{i}",
                            profile.generate_memory(rng, PAGES))
        tb.clouds["src"].hosts[i].place(vm)
        vm.boot()
        Dirtier(sim, vm, profile, rng)
        vms.append(vm)
        dst_hosts.append(tb.clouds["dst"].hosts[i])
    if use_shrinker:
        migrator = LiveMigrator(
            sim, tb.scheduler, shrinker_codec_factory(RegistryDirectory()))
    else:
        migrator = LiveMigrator(sim, tb.scheduler)
    coord = ClusterMigrationCoordinator(sim, migrator)
    stats = sim.run(until=coord.migrate_cluster(
        vms, dst_hosts, MigrationConfig(), wave_size=1))
    for vm in vms:
        vm.stop()
    return stats


@pytest.mark.parametrize("workload", list(PROFILES))
def test_e1_shrinker_per_workload(benchmark, workload):
    """Per-workload savings (bench timer wraps the Shrinker run)."""
    raw = migrate_cluster(workload, use_shrinker=False)
    shr = benchmark.pedantic(
        migrate_cluster, args=(workload, True), rounds=1, iterations=1)
    bw_saving = 1 - shr.total_wire_bytes / raw.total_wire_bytes
    time_saving = 1 - shr.duration / raw.duration
    benchmark.extra_info.update({
        "workload": workload,
        "bandwidth_saving": round(bw_saving, 4),
        "time_saving": round(time_saving, 4),
    })
    # Shape assertions (the paper's qualitative claims).
    assert shr.total_wire_bytes < raw.total_wire_bytes
    assert shr.duration < raw.duration
    if workload in ("web-server", "kernel-build"):
        assert 0.25 <= bw_saving <= 0.60
        assert 0.05 <= time_saving
    # Hashing keeps time savings below bandwidth savings on fast links.
    assert time_saving <= bw_saving + 0.02


def test_e1_summary_table(benchmark):
    def sweep():
        return [
            (workload,
             migrate_cluster(workload, use_shrinker=False),
             migrate_cluster(workload, use_shrinker=True))
            for workload in PROFILES
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for workload, raw, shr in results:
        rows.append((
            workload,
            f"{raw.duration:.2f}",
            f"{shr.duration:.2f}",
            pct(1 - shr.duration / raw.duration),
            f"{raw.total_wire_bytes / 2**20:.0f}",
            f"{shr.total_wire_bytes / 2**20:.0f}",
            pct(1 - shr.total_wire_bytes / raw.total_wire_bytes),
            f"{shr.max_downtime * 1000:.0f}",
        ))
    print_table(
        f"E1: {CLUSTER}-VM cluster WAN migration, baseline vs Shrinker "
        "(64 MiB VMs, 1 Gbit/s, memory-only dedup)",
        ["workload", "t_raw(s)", "t_shr(s)", "t_saved",
         "MiB_raw", "MiB_shr", "bw_saved", "downtime(ms)"],
        rows,
    )
    print("paper: ~20% migration time, 30-40% bandwidth "
          "'depending on workload'")
