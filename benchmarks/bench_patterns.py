"""E7 — communication-pattern detection accuracy (paper §III-C).

Paper claim: "Through experiments, we showed that our framework is able
to detect communication traces similar to state of the art solutions
that use more invasive techniques such as library modification."

The bench runs known communication patterns (ring, all-to-all,
master-worker, clustered) and a real MapReduce shuffle, capturing at the
hypervisor level (flow taps + packetization, optional packet sampling)
and comparing against library-level ground truth.

Expected shape: cosine similarity >= 0.95 for every pattern even under
1-in-20 packet sampling; dominant pairs identified exactly; measured
volume within ~5% of app bytes (framing overhead).
"""

import numpy as np
import pytest

from repro.hypervisor import MemoryImage, PhysicalHost, VirtualMachine
from repro.mapreduce import JobTracker, MapReduceJob
from repro.network import FlowScheduler, Site, Topology, gbit_per_s
from repro.patterns import (
    GroundTruthRecorder,
    HypervisorSniffer,
    cosine_similarity,
    pearson_correlation,
    top_pair_overlap,
    volume_ratio,
)
from repro.simkernel import Simulator
from repro.workloads import PATTERNS, run_pattern

from _tables import print_table


def world(n_vms=8):
    sim = Simulator()
    topo = Topology()
    topo.add_site(Site("s1", lan_bandwidth=gbit_per_s(10)))
    topo.add_site(Site("s2", lan_bandwidth=gbit_per_s(10)))
    topo.connect("s1", "s2", bandwidth=gbit_per_s(1), latency=0.03)
    sched = FlowScheduler(sim, topo)
    hosts = {s: PhysicalHost(f"h-{s}", s, cores=128) for s in ("s1", "s2")}
    vms = []
    for i in range(n_vms):
        vm = VirtualMachine(sim, f"vm{i}", MemoryImage(64))
        hosts["s1" if i < n_vms // 2 else "s2"].place(vm)
        vm.boot()
        vms.append(vm)
    return sim, sched, vms


def detect(pattern_name: str, sampling_rate: float = 1.0, rounds=3):
    sim, sched, vms = world()
    truth = GroundTruthRecorder()
    sniffer = HypervisorSniffer(sched, sampling_rate=sampling_rate,
                                rng=np.random.default_rng(1))
    pattern = PATTERNS[pattern_name](len(vms), 2e6)
    sim.run(until=run_pattern(sim, sched, vms, pattern, rounds=rounds,
                              recorder=truth))
    return sniffer, truth


def detect_mapreduce(sampling_rate: float = 1.0):
    sim, sched, vms = world()
    truth = GroundTruthRecorder()
    sniffer = HypervisorSniffer(sched, sampling_rate=sampling_rate,
                                rng=np.random.default_rng(1),
                                tags={"mr-input", "mr-shuffle"})
    jt = JobTracker(sim, sched, rng=np.random.default_rng(0),
                    traffic_recorder=truth)
    for vm in vms:
        jt.add_tracker(vm)
    job = MapReduceJob("shuffle-heavy",
                       np.full(16, 5.0), np.full(4, 5.0),
                       split_bytes=8e6, map_output_bytes=8e6)
    sim.run(until=jt.submit(job))
    return sniffer, truth


@pytest.mark.parametrize("pattern", list(PATTERNS))
def test_e7_pattern_similarity(benchmark, pattern):
    sniffer, truth = benchmark.pedantic(
        detect, args=(pattern,), rounds=1, iterations=1)
    cos = cosine_similarity(sniffer.matrix, truth.matrix)
    benchmark.extra_info.update({"pattern": pattern,
                                 "cosine": round(cos, 4)})
    assert cos > 0.99


@pytest.mark.parametrize("rate", [1.0, 0.2, 0.05])
def test_e7_sampling_robustness(benchmark, rate):
    sniffer, truth = benchmark.pedantic(
        detect, args=("master-worker", rate), rounds=1, iterations=1)
    cos = cosine_similarity(sniffer.matrix, truth.matrix)
    benchmark.extra_info.update({"rate": rate, "cosine": round(cos, 4)})
    assert cos > 0.95


def test_e7_mapreduce_shuffle_detected(benchmark):
    sniffer, truth = benchmark.pedantic(detect_mapreduce, rounds=1,
                                        iterations=1)
    assert cosine_similarity(sniffer.matrix, truth.matrix) > 0.95
    # Same conversations observed (uniform shuffle volumes make pair
    # *ranking* ill-defined, so compare the pair sets instead).
    assert set(sniffer.matrix.pairs()) == set(truth.matrix.pairs())


def test_e7_summary_table(benchmark):
    def sweep():
        rows = []
        for pattern in PATTERNS:
            for rate in (1.0, 0.05):
                sniffer, truth = detect(pattern, rate)
                rows.append((pattern, rate, sniffer, truth))
        sniffer, truth = detect_mapreduce()
        rows.append(("mapreduce-shuffle", 1.0, sniffer, truth))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    # Top-pair overlap only means something when volumes are not tied.
    ranked = {"master-worker", "mapreduce-shuffle"}
    for pattern, rate, sniffer, truth in results:
        overlap = (
            f"{top_pair_overlap(sniffer.matrix, truth.matrix, 5):.2f}"
            if pattern in ranked else "(ties)"
        )
        rows.append((
            pattern,
            f"1/{int(1 / rate)}" if rate < 1 else "full",
            f"{cosine_similarity(sniffer.matrix, truth.matrix):.3f}",
            f"{pearson_correlation(sniffer.matrix, truth.matrix):.3f}",
            f"{volume_ratio(sniffer.matrix, truth.matrix):.3f}",
            overlap,
        ))
    print_table(
        "E7: hypervisor-level capture vs instrumented ground truth",
        ["pattern", "sampling", "cosine", "pearson", "vol_ratio",
         "top5_overlap"],
        rows,
    )
    print("paper: traces 'similar to state of the art solutions that use "
          "more invasive techniques'")
