"""Event-sourcing overhead: append, replay, and snapshot throughput.

Event sourcing is only free if the log never becomes the control
plane's bottleneck.  Three numbers, written to ``BENCH_eventlog.json``:

1. **Append cost** — nanoseconds per committed event, against a real
   :class:`~repro.controlplane.EventLog` and against the disabled
   :data:`~repro.controlplane.NULL_LOG` (the price non-event-sourced
   users pay: one attribute lookup and a no-op call).
2. **Replay throughput** — events folded per second by
   :func:`~repro.controlplane.rebuild` over a synthetic but
   representative job/lease/tenant mix, and the end-to-end time to
   recover a control-plane state from a log of ``N_EVENTS`` events.
3. **Snapshot round-trip** — JSONL dump + load + validate rate, the
   cold-start path of cross-process recovery.
"""

import time

from repro.controlplane import (EventLog, NULL_LOG, rebuild,
                                validate_events)
from repro.simkernel import Simulator

from _meta import merge_payload
from _tables import fmt, print_table


N_EVENTS = 30_000


def _merge_payload(section: str, data: dict) -> None:
    merge_payload("eventlog", section, data)


def _synthetic_workload(log, n: int) -> None:
    """A representative event mix: every 10 events are one job's full
    lifecycle under one tenant, with a lease riding along."""
    log.append("tenant", "acme", to="registered", weight=2.0)
    for i in range(1, n // 10 + 1):
        log.append("job", i, to="queued", frm="pending", cause="submit",
                   tenant="acme", work=600.0, attempts=0, name=f"job-{i}",
                   n_nodes=2, runtime=300.0, priority=0, min_nodes=2,
                   max_nodes=2)
        log.append("job", i, to="provisioning", frm="queued",
                   cause="dispatch", tenant="acme", work=600.0,
                   attempts=0, reserve=600.0)
        log.append("lease", i, to="active", cause="grant", tenant="acme",
                   n=2, term=900.0, job=i, cluster=f"job-{i}",
                   expires=900.0)
        log.append("job", i, to="running", frm="provisioning",
                   cause="provisioned", tenant="acme", work=600.0,
                   attempts=1, lease=i)
        log.append("lease", i, to="active", frm="active", cause="renew",
                   tenant="acme", expires=1800.0)
        log.append("spot", f"vm-{i}", to="enrolled", cause="back-lease",
                   cloud="eu", bid=0.08, lease=i, tenant="acme")
        log.append("job", i, to="completed", frm="running",
                   cause="work-done", tenant="acme", work=0.0,
                   attempts=1, unreserve=600.0)
        log.append("spot", f"vm-{i}", to="closed", frm="enrolled",
                   cause="finalize", lease=i, tenant="acme",
                   savings=0.01)
        log.append("lease", i, to="released", frm="active",
                   cause="release", tenant="acme", n=2, charged=600.0,
                   cost=0.05)
        log.append("heal", i, to="replaced", cause="health",
                   vm=f"vm-{i}")


def _built_log() -> EventLog:
    log = EventLog(Simulator())
    _synthetic_workload(log, N_EVENTS)
    return log


# -- append path ---------------------------------------------------------


def test_append_throughput(benchmark):
    sim = Simulator()
    log = EventLog(sim)

    def run():
        _synthetic_workload(log, N_EVENTS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    n = len(log)

    start = time.perf_counter()
    for i in range(N_EVENTS):
        NULL_LOG.append("job", i, to="queued", frm="pending",
                        tenant="acme", work=600.0)
    null_ns = (time.perf_counter() - start) / N_EVENTS * 1e9

    start = time.perf_counter()
    log2 = EventLog(Simulator())
    _synthetic_workload(log2, N_EVENTS)
    live_s = time.perf_counter() - start
    live_ns = live_s / len(log2) * 1e9
    rate = len(log2) / live_s

    assert rate > 10_000  # appends must never bottleneck the plane
    print_table(
        f"EVENT APPEND ({n} events)",
        ["path", "ns/event"],
        [("EventLog.append", fmt(live_ns, 0)),
         ("NULL_LOG.append (sourcing off)", fmt(null_ns, 0))],
    )
    _merge_payload("append", {
        "events": n,
        "append_ns": live_ns,
        "null_append_ns": null_ns,
        "appends_per_sec": rate,
    })


# -- replay path ---------------------------------------------------------


def test_replay_throughput(benchmark):
    log = _built_log()
    events = list(log)

    state = benchmark.pedantic(lambda: rebuild(events),
                               rounds=1, iterations=1)
    start = time.perf_counter()
    state = rebuild(events)
    replay_s = time.perf_counter() - start
    rate = len(events) / replay_s

    assert len(state.jobs) == N_EVENTS // 10
    assert all(r.state == "completed" for r in state.jobs.values())
    assert state.tenants["acme"].reserved == 0.0
    assert rate > 20_000  # recovery must be fast even for long runs

    print_table(
        f"REPLAY ({len(events)} events)",
        ["metric", "value"],
        [("events/sec", fmt(rate, 0)),
         ("full rebuild (ms)", fmt(replay_s * 1e3, 1)),
         ("jobs reconstructed", len(state.jobs)),
         ("leases reconstructed", len(state.leases))],
    )
    _merge_payload("replay", {
        "events": len(events),
        "events_per_sec": rate,
        "rebuild_ms": replay_s * 1e3,
        "jobs": len(state.jobs),
        "leases": len(state.leases),
    })


# -- snapshot round-trip -------------------------------------------------


def test_snapshot_round_trip(benchmark, tmp_path):
    log = _built_log()
    path = tmp_path / "events.jsonl"

    def round_trip():
        log.dump_jsonl(path)
        events = EventLog.load_jsonl(path)  # includes validation
        return events

    events = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    start = time.perf_counter()
    events = round_trip()
    rt_s = time.perf_counter() - start

    assert events == log.events
    assert validate_events(events) == len(log)
    rate = len(events) / rt_s
    print_table(
        f"JSONL SNAPSHOT ({len(events)} events, "
        f"{path.stat().st_size // 1024} KiB)",
        ["metric", "value"],
        [("round-trip events/sec", fmt(rate, 0)),
         ("dump+load+validate (ms)", fmt(rt_s * 1e3, 1))],
    )
    _merge_payload("snapshot", {
        "events": len(events),
        "bytes": path.stat().st_size,
        "round_trip_events_per_sec": rate,
        "round_trip_ms": rt_s * 1e3,
    })
