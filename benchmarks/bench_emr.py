"""E10 — deadline-aware Elastic MapReduce over distributed clouds (§IV).

Paper plan: "an Elastic MapReduce service harnessing resources from
distributed clouds ... support dynamic addition and removal of virtual
nodes as well as policies for resource selection.  We also plan to study
how job deadlines can be included in this model to perform intelligent
resource selection."

The bench submits the same BLAST job under a tight deadline with three
policies:

* **static-small** — 4 nodes, no scaling (cheap, misses the deadline);
* **static-big** — 16 nodes from the start (meets it, pays for idle
  capacity after the deadline pressure passes);
* **deadline-aware** — 4 nodes plus mid-job scale-out from the cheapest
  cloud, releasing the extras at job end.

Expected shape: deadline-aware meets the deadline the small cluster
misses, at a cost between the two static configurations.
"""

import numpy as np

from repro.emr import DeadlineScalePolicy, ElasticMapReduceService, \
    StaticPolicy
from repro.sky import CheapestFirst
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import blast_job

from _tables import print_table

DEADLINE_S = 350.0


def run(policy_name: str, seed: int = 5):
    tb = sky_testbed(
        sites=[SiteSpec("onprem", region="eu", on_demand_hourly=0.10,
                        n_hosts=10),
               SiteSpec("cheap", region="us", on_demand_hourly=0.04,
                        n_hosts=10)],
        memory_pages=2048, image_blocks=8192,
    )
    sim = tb.sim
    service = ElasticMapReduceService(tb.federation, tb.image_name,
                                      rng=np.random.default_rng(0))
    n_nodes = 16 if policy_name == "static-big" else 4
    emr = sim.run(until=service.create_cluster(n_nodes))
    job = blast_job(np.random.default_rng(seed), n_query_batches=48,
                    mean_batch_seconds=40, db_shard_bytes=4 * 2**20)
    deadline = sim.now + DEADLINE_S
    if policy_name == "deadline-aware":
        scale_policy = DeadlineScalePolicy(check_interval=30, step=4)
    else:
        scale_policy = StaticPolicy()
    report = sim.run(until=service.run_job(
        emr, job, deadline=deadline, scale_policy=scale_policy,
        selection_policy=CheapestFirst()))
    # Total bill: run everything until the job is done, then release.
    service.release_cluster(emr)
    total_cost = sum(c.compute_cost() for c in tb.clouds.values())
    return report, total_cost


def test_e10_static_small_misses_deadline(benchmark):
    report, _ = benchmark.pedantic(run, args=("static-small",), rounds=1,
                                   iterations=1)
    assert report.deadline_met is False


def test_e10_deadline_policy_meets_deadline(benchmark):
    report, cost = benchmark.pedantic(run, args=("deadline-aware",),
                                      rounds=1, iterations=1)
    assert report.deadline_met is True
    assert report.nodes_added > 0
    assert report.nodes_released == report.nodes_added
    benchmark.extra_info.update({
        "nodes_added": report.nodes_added,
        "makespan": round(report.makespan, 1),
        "cost": round(cost, 4),
    })


def test_e10_costs_ordered(benchmark):
    def sweep():
        return {name: run(name) for name in
                ("static-small", "deadline-aware", "static-big")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    aware_report, aware_cost = results["deadline-aware"]
    big_report, big_cost = results["static-big"]
    small_report, small_cost = results["static-small"]
    # Deadline-aware: meets the deadline the small cluster misses, and
    # is no more expensive than permanent over-provisioning.  (It can
    # even undercut static-small: finishing sooner saves instance-hours.)
    assert small_report.deadline_met is False
    assert aware_report.deadline_met is True
    assert aware_cost <= big_cost * 1.05


def test_e10_summary_table(benchmark):
    def sweep():
        return [(name,) + run(name) for name in
                ("static-small", "deadline-aware", "static-big")]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, report, cost in results:
        rows.append((
            name,
            f"{report.makespan:.0f}",
            "yes" if report.deadline_met else "NO",
            report.nodes_added,
            f"${cost:.4f}",
        ))
    print_table(
        f"E10: BLAST (48 x ~40s) with a {DEADLINE_S:.0f}s deadline, "
        "policies over a 2-cloud federation",
        ["policy", "makespan(s)", "deadline met", "nodes added", "cost"],
        rows,
    )
    print("shape: deadline-aware scaling meets the deadline the small "
          "cluster misses, cheaper than permanent over-provisioning")
