"""FLOW CHURN — incremental vs full max-min allocation.

The federation's WAN carries hundreds of concurrent transfers
(migration rounds, image propagation, shuffle); every arrival and
departure used to trigger a *global* progressive-filling recompute,
O(flows x links) per event.  The incremental allocator settles and
re-rates only the bottleneck-connected component of each change, so
churn on one site pair never touches transfers elsewhere.

This bench drives both modes through an identical seeded storm —
well over a thousand arrivals/departures with >500 flows in flight at
the peak — and checks (a) the allocations agree (same completions at
the same times) and (b) the incremental mode is at least 3x faster.
The incremental storm is additionally re-run on the calendar queue
backend, asserting byte-identical completions and recording both wall
clocks.  Results are exported to ``BENCH_flows.json`` at the repo root.
"""

import time

import numpy as np

from repro.network import FlowScheduler, Site, Topology
from repro.simkernel import Simulator

from _meta import write_payload
from _tables import fmt, print_table


N_SITES = 8
N_FLOWS = 1300
ARRIVAL_WINDOW = 100.0  # seconds over which the arrivals land


def make_workload(seed=42):
    """One seeded storm: (arrival time, src, dst, size, rate_cap)."""
    rng = np.random.default_rng(seed)
    flows = []
    for _ in range(N_FLOWS):
        src, dst = rng.choice(N_SITES, size=2, replace=False)
        flows.append((
            float(rng.uniform(0.0, ARRIVAL_WINDOW)),
            f"s{src}", f"s{dst}",
            float(rng.uniform(5e6, 12e6)),
            None if rng.random() < 0.8 else float(rng.uniform(5e4, 2e5)),
        ))
    flows.sort()
    return flows


def run_storm(mode, seed=42, queue=None):
    sim = Simulator(queue=queue)
    topo = Topology()
    for i in range(N_SITES):
        topo.add_site(Site(f"s{i}"))
    for i in range(N_SITES):
        for j in range(i + 1, N_SITES):
            topo.connect(f"s{i}", f"s{j}", bandwidth=1e6, latency=0.0)
    sched = FlowScheduler(sim, topo, mode=mode)
    records = []
    sched.taps.append(records.append)
    peak = 0

    def driver():
        nonlocal peak
        now = 0.0
        for at, src, dst, size, cap in make_workload(seed):
            if at > now:
                yield sim.timeout(at - now)
                now = at
            sched.start_flow(src, dst, size, rate_cap=cap, tag="storm")
            peak = max(peak, len(sched.active_flows))

    sim.process(driver())
    wall = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - wall
    return {
        "mode": mode,
        "wall_s": wall,
        "peak_concurrent": peak,
        "completions": sorted(
            ((r.src, r.dst, r.size, round(r.started_at, 6)),
             r.finished_at) for r in records),
        "makespan": sim.now,
        "stats": dict(sched.stats),
    }


def test_flow_churn_incremental_vs_full(benchmark):
    inc = benchmark.pedantic(run_storm, args=("incremental",),
                             rounds=1, iterations=1)
    full = run_storm("full")
    cal = run_storm("incremental", queue="calendar")

    # Backend equivalence: the calendar queue must deliver the exact
    # same event order, hence bit-identical completion times.
    assert cal["completions"] == inc["completions"]
    assert cal["makespan"] == inc["makespan"]

    # Exactness first: both modes complete the same flows at the same
    # times (identical keys, finish times within float noise).
    assert len(inc["completions"]) == N_FLOWS
    assert [c[0] for c in inc["completions"]] == \
           [c[0] for c in full["completions"]]
    max_delta = max(abs(a[1] - b[1]) for a, b in
                    zip(inc["completions"], full["completions"]))
    assert max_delta <= 1e-6 * full["makespan"]

    speedup = full["wall_s"] / inc["wall_s"]
    churn_events = N_FLOWS * 2  # every flow arrives and departs
    rows = [
        ("churn events", churn_events),
        ("peak concurrent flows", inc["peak_concurrent"]),
        ("makespan (sim s)", fmt(inc["makespan"], 1)),
        ("full wall (s)", fmt(full["wall_s"], 2)),
        ("incremental wall (s)", fmt(inc["wall_s"], 2)),
        ("incremental wall, calendar queue (s)", fmt(cal["wall_s"], 2)),
        ("speedup", fmt(speedup, 1) + "x"),
        ("recompute batches", inc["stats"]["batches"]),
        ("flows re-rated", inc["stats"]["flows_rerated"]),
        ("timer re-arms skipped", inc["stats"]["timers_skipped"]),
        ("max |finish delta| (s)", f"{max_delta:.2e}"),
    ]
    print_table("FLOW CHURN: incremental vs full progressive filling "
                f"({N_SITES}-site mesh)", ["metric", "value"], rows)

    out = {
        "n_flows": N_FLOWS,
        "churn_events": churn_events,
        "peak_concurrent": inc["peak_concurrent"],
        "makespan_s": inc["makespan"],
        "wall_full_s": full["wall_s"],
        "wall_incremental_s": inc["wall_s"],
        "wall_incremental_calendar_s": cal["wall_s"],
        "speedup": speedup,
        "max_finish_delta_s": max_delta,
        "incremental_stats": inc["stats"],
        "full_stats": full["stats"],
    }
    write_payload("flows", out)

    assert inc["peak_concurrent"] >= 500
    assert speedup >= 3.0


if __name__ == "__main__":
    class _Shim:
        @staticmethod
        def pedantic(fn, args=(), **_):
            return fn(*args)

    test_flow_churn_incremental_vs_full(_Shim())
