"""E8 — communication-aware relocation vs naive placement (paper §III-C).

Paper motivation: relocation "needs to take into account communication
patterns to limit communications crossing cloud boundaries" — for
latency and because cross-cloud traffic is billed.

The bench places a 16-VM cluster with interleaved communication groups
across 2-3 clouds, detects the traffic matrix with the transparent
sniffer, and compares placements:

* round-robin / random (locality-blind baselines),
* the Kernighan-Lin communication-aware planner,

measuring cross-cloud bytes per workload round, the billed dollar cost,
and the one-time migration traffic the adaptation itself spends
(Shrinker keeps that small).
"""

import numpy as np

from repro.autonomic import (
    AdaptationEngine,
    CommunicationAwarePlanner,
    cross_traffic,
    random_assignment,
    round_robin_assignment,
)
from repro.patterns import HypervisorSniffer
from repro.testbeds import SiteSpec, sky_testbed
from repro.workloads import run_pattern

from _tables import mib, print_table

N_VMS = 16
GROUPS = 4


def grouped_pattern(n, mode, heavy=4e6, light=5e4):
    """Clustered communication with two group layouts.

    ``"block"`` — group = i // (n/GROUPS): contiguous members, the worst
    case for round-robin dealing (it splits every group across clouds).
    ``"stripe"`` — group = i % GROUPS: interleaved members, the worst
    case for the federation's contiguous per-cloud placement.
    """
    size = n // GROUPS

    def group(i):
        return i // size if mode == "block" else i % GROUPS

    return [
        (i, j, heavy if group(i) == group(j) else light)
        for i in range(n) for j in range(n) if i != j
    ]


def build(n_clouds=2):
    tb = sky_testbed(
        sites=[SiteSpec(f"cloud{i}", n_hosts=16,
                        region="eu" if i == 0 else "us")
               for i in range(n_clouds)],
        memory_pages=2048, image_blocks=4096,
    )
    sim = tb.sim
    cluster = sim.run(until=tb.federation.create_virtual_cluster(
        tb.image_name, N_VMS))
    return tb, cluster


def detect_matrix(tb, cluster, mode):
    sniffer = HypervisorSniffer(tb.scheduler, tags={"app"})
    proc = run_pattern(tb.sim, tb.scheduler, cluster.vms,
                       grouped_pattern(N_VMS, mode), rounds=3)
    tb.sim.run(until=proc)
    sniffer.detach()
    return sniffer.matrix


def run_workload_bytes(tb, cluster, mode, rounds=3):
    before = tb.billing.total_cross_site_bytes
    proc = run_pattern(tb.sim, tb.scheduler, cluster.vms,
                       grouped_pattern(N_VMS, mode), rounds=rounds)
    tb.sim.run(until=proc)
    return (tb.billing.total_cross_site_bytes - before) / rounds


def test_e8_planner_beats_baselines_statically(benchmark):
    tb, cluster = build()
    matrix = detect_matrix(tb, cluster, "block")
    vms = [vm.name for vm in cluster.vms]
    clouds = {name: 16 for name in tb.clouds}

    def plan():
        return CommunicationAwarePlanner().plan(vms, matrix, clouds)

    planned = benchmark.pedantic(plan, rounds=1, iterations=1)
    rng = np.random.default_rng(0)
    cut_planned = cross_traffic(planned, matrix)
    cut_rr = cross_traffic(round_robin_assignment(vms, clouds), matrix)
    cut_rand = np.mean([
        cross_traffic(random_assignment(vms, clouds, rng), matrix)
        for _ in range(20)
    ])
    benchmark.extra_info.update({
        "cut_planned_mib": round(cut_planned / 2**20, 1),
        "cut_round_robin_mib": round(cut_rr / 2**20, 1),
        "cut_random_mib": round(float(cut_rand) / 2**20, 1),
    })
    assert cut_planned < 0.3 * cut_rr
    assert cut_planned < 0.3 * cut_rand


def test_e8_adaptation_reduces_billed_traffic(benchmark):
    def scenario():
        tb, cluster = build()
        matrix = detect_matrix(tb, cluster, "stripe")
        per_round_before = run_workload_bytes(tb, cluster, "stripe")
        engine = AdaptationEngine(tb.federation)
        report = tb.sim.run(until=engine.adapt(cluster.vms, matrix))
        per_round_after = run_workload_bytes(tb, cluster, "stripe")
        migration_bytes = sum(a.wire_bytes for a in report.actions)
        return per_round_before, per_round_after, migration_bytes, report

    before, after, mig_bytes, report = benchmark.pedantic(
        scenario, rounds=1, iterations=1)
    assert after < 0.3 * before
    assert report.migrations > 0
    # The one-time migration cost amortizes within a few workload rounds.
    assert mig_bytes < 20 * before
    benchmark.extra_info.update({
        "per_round_before_mib": round(before / 2**20, 1),
        "per_round_after_mib": round(after / 2**20, 1),
        "migration_mib": round(mig_bytes / 2**20, 1),
        "breakeven_rounds": round(mig_bytes / max(before - after, 1), 1),
    })


def test_e8_summary_table(benchmark):
    def sweep():
        rows = []
        for n_clouds in (2, 3):
            tb, cluster = build(n_clouds)
            matrix = detect_matrix(tb, cluster, "block")
            vms = [vm.name for vm in cluster.vms]
            clouds = {name: 16 for name in tb.clouds}
            planner = CommunicationAwarePlanner()
            planned = planner.plan(vms, matrix, clouds)
            rng = np.random.default_rng(0)
            cut_p = cross_traffic(planned, matrix)
            cut_rr = cross_traffic(
                round_robin_assignment(vms, clouds), matrix)
            cut_r = float(np.mean([
                cross_traffic(random_assignment(vms, clouds, rng), matrix)
                for _ in range(20)
            ]))
            rows.append((n_clouds, cut_rr, cut_r, cut_p))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, mib(rr), mib(r), mib(p), f"{rr / max(p, 1):.1f}x")
        for n, rr, r, p in results
    ]
    print_table(
        "E8: cross-cloud traffic (MiB per observation window), 16 VMs in "
        f"{GROUPS} communication groups",
        ["clouds", "round-robin", "random", "comm-aware", "reduction"],
        rows,
    )
    print("shape: the planner cuts cross-cloud (billed, high-latency) "
          "traffic by several-fold on clustered patterns")
