"""Legacy setup shim.

``pip install -e .`` uses the pyproject/PEP 660 path on modern
toolchains; this shim keeps ``python setup.py develop`` working on
offline machines whose pip/setuptools lack the ``wheel`` package.
"""

from setuptools import setup

setup()
